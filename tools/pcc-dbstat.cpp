//===- tools/pcc-dbstat.cpp - cache database maintenance -------------------===//
//
// Reports and maintains a persistent cache database directory.
//
//   pcc-dbstat DIR                  print aggregate statistics
//   pcc-dbstat DIR --header-only    list per-file headers; reads only
//                                   the fixed 76-byte v2 header of each
//                                   cache, never its index or payload
//   pcc-dbstat DIR --shrink-to N    evict caches until <= N bytes
//                                   (least-accumulated first; corrupt
//                                   files always removed)
//   pcc-dbstat DIR --clear          delete every cache file
//   pcc-dbstat DIR --locks          list writer-coordination locks and
//                                   whether each is currently held
//   pcc-dbstat DIR --heat           per-file histogram of the v3 index's
//                                   per-trace Heat counters (log2
//                                   buckets) — which caches hold hot
//                                   translations and which are dead
//                                   weight a quota would evict first
//   pcc-dbstat DIR --gens           per-file histogram of per-trace
//                                   optimization generations — how much
//                                   of each cache the finalize-time AOT
//                                   tier has promoted (files without
//                                   the OptGen index field show every
//                                   trace at generation 0) — plus each
//                                   file's certificate coverage: of the
//                                   promoted bodies, how many carry a
//                                   validation certificate the trusted
//                                   checker can consume at prime
//   pcc-dbstat DIR --l2 DIR2        treat DIR as the local L1 of a
//                                   tiered store with remote tier DIR2
//                                   and print a per-tier summary line
//                                   plus the union entry count
//   pcc-dbstat DIR --jobs N         scan N cache files in parallel
//                                   (statistics and --header-only
//                                   rows are identical for any N; the
//                                   per-file scan-time column shows
//                                   what each open cost)
//
//===----------------------------------------------------------------------===//

#include "persist/CacheDatabase.h"
#include "persist/CacheView.h"
#include "persist/DirectoryStore.h"
#include "persist/TieredStore.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

using namespace pcc;
using namespace pcc::persist;

int main(int Argc, char **Argv) {
  const char *Dir = nullptr;
  const char *L2Dir = nullptr;
  bool Clear = false;
  bool Shrink = false;
  bool HeaderOnly = false;
  bool Locks = false;
  bool Heat = false;
  bool Gens = false;
  uint64_t MaxBytes = 0;
  unsigned Jobs = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--clear") == 0)
      Clear = true;
    else if (std::strcmp(Argv[I], "--header-only") == 0)
      HeaderOnly = true;
    else if (std::strcmp(Argv[I], "--locks") == 0)
      Locks = true;
    else if (std::strcmp(Argv[I], "--heat") == 0)
      Heat = true;
    else if (std::strcmp(Argv[I], "--gens") == 0)
      Gens = true;
    else if (std::strcmp(Argv[I], "--l2") == 0 && I + 1 < Argc)
      L2Dir = Argv[++I];
    else if (std::strcmp(Argv[I], "--shrink-to") == 0 && I + 1 < Argc) {
      Shrink = true;
      MaxBytes = std::strtoull(Argv[++I], nullptr, 0);
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 0));
    else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf(
          "usage: pcc-dbstat DIR [--header-only | --shrink-to BYTES | "
          "--clear | --locks | --heat | --gens] [--l2 DIR2] [--jobs N]\n"
          "  --header-only  per-file listing from v2/v3 headers alone:\n"
          "                 each cache costs one 76-byte read regardless\n"
          "                 of size (legacy v1 files are listed by magic\n"
          "                 only, without header fields); shows the\n"
          "                 payload mode (xip/mat), payload page count\n"
          "                 and alignment, and each file's open cost in\n"
          "                 the scan column\n"
          "  --shrink-to N  evict caches until the database is <= N "
          "bytes\n"
          "  --clear        delete every cache file\n"
          "  --locks        list writer-coordination lock files and\n"
          "                 whether each is held right now\n"
          "  --heat         per-file log2 histogram of per-trace Heat\n"
          "                 counters from the v3 index (v2 files show\n"
          "                 every trace as heat 0)\n"
          "  --gens         per-file histogram of per-trace optimization\n"
          "                 generations (files without the OptGen index\n"
          "                 field show every trace at generation 0) and\n"
          "                 certificate coverage of the promoted bodies\n"
          "  --l2 DIR2      tiered view: DIR is the local L1, DIR2 the\n"
          "                 remote L2; prints one summary line per tier\n"
          "  --jobs N       scan N files in parallel (stats and\n"
          "                 --header-only; output is identical for "
          "any N)\n");
      return 0;
    } else if (!Dir)
      Dir = Argv[I];
    else {
      std::fprintf(stderr, "pcc-dbstat: unexpected argument %s\n",
                   Argv[I]);
      return 2;
    }
  }
  if (!Dir) {
    std::fprintf(stderr,
                 "usage: pcc-dbstat DIR [--shrink-to BYTES | --clear]\n");
    return 2;
  }

  CacheDatabase Db(Dir);
  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<support::ThreadPool>(Jobs);
  if (HeaderOnly) {
    auto Names = listDirectory(Dir);
    if (!Names) {
      std::fprintf(stderr, "pcc-dbstat: %s\n",
                   Names.status().toString().c_str());
      return 1;
    }
    std::vector<std::string> CacheNames;
    for (const std::string &Name : *Names)
      if (Name.size() >= 4 && Name.substr(Name.size() - 4) == ".pcc")
        CacheNames.push_back(Name);
    // One row slot per file: scans fan across the pool but the table
    // stays in listing order. The scan column is each file's own open
    // cost, so it is meaningful under any job count.
    std::vector<std::vector<std::string>> Rows(CacheNames.size());
    auto ScanOne = [&](size_t I) {
      const std::string &Name = CacheNames[I];
      std::string Path = std::string(Dir) + "/" + Name;
      auto Begin = std::chrono::steady_clock::now();
      auto ElapsedMicros = [&]() {
        return formatString(
            "%lld us",
            (long long)std::chrono::duration_cast<
                std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Begin)
                .count());
      };
      if (!isV2CacheFile(Path)) {
        Rows[I] = {Name, "v1", "-", "-", "-", "-", "-",
                   "-",  "-",  "-", "-", "-", ElapsedMicros()};
        return;
      }
      auto View =
          CacheFileView::openFile(Path, CacheFileView::Depth::HeaderOnly);
      if (!View) {
        Rows[I] = {Name, "v2", "corrupt: " + View.status().toString(),
                   "",   "",   "",
                   "",   "",   "",
                   "",   "",   "",
                   ElapsedMicros()};
        return;
      }
      // Payload placement, from the header alone: the page count is
      // what a consumer maps (and under XIP, shares); the align column
      // verifies the v3 on-disk invariant that the payload section
      // starts on a page boundary.
      uint32_t PayloadPages =
          (View->payloadSize() + v2::PayloadAlign - 1) / v2::PayloadAlign;
      bool Aligned = View->payloadOffset() % v2::PayloadAlign == 0;
      Rows[I] = {Name,
                 View->formatVersion() == v2::XipVersion ? "v3" : "v2",
                 toHex(View->engineHash(), 16),
                 toHex(View->toolHash(), 16),
                 formatString("%u", View->generation()),
                 View->writerTag()
                     ? formatString("pid:%u", View->writerTag())
                     : std::string("-"),
                 formatString("%u", View->numModules()),
                 formatString("%u", View->numTraces()),
                 View->executeInPlace() ? "xip" : "mat",
                 formatString("%u", PayloadPages),
                 Aligned ? "page"
                         : formatString("+%u", View->payloadOffset() %
                                                   v2::PayloadAlign),
                 formatByteSize(View->declaredFileBytes()),
                 ElapsedMicros()};
    };
    if (Pool)
      Pool->parallelFor(CacheNames.size(), ScanOne);
    else
      for (size_t I = 0; I < CacheNames.size(); ++I)
        ScanOne(I);
    TablePrinter Table("cache files (header-only scan)");
    Table.addRow({"file", "fmt", "engine key", "tool key", "gen",
                  "writer", "modules", "traces", "mode", "pl pages",
                  "pl align", "declared size", "scan"});
    for (std::vector<std::string> &Row : Rows)
      Table.addRow(std::move(Row));
    Table.print();
    return 0;
  }
  if (Heat) {
    auto Names = listDirectory(Dir);
    if (!Names) {
      std::fprintf(stderr, "pcc-dbstat: %s\n",
                   Names.status().toString().c_str());
      return 1;
    }
    std::vector<std::string> CacheNames;
    for (const std::string &Name : *Names)
      if (Name.size() >= 4 && Name.substr(Name.size() - 4) == ".pcc")
        CacheNames.push_back(Name);
    // Log2 buckets: 0, 1, 2-3, 4-7, 8-15, >=16. A quota evicts from the
    // left columns first; translations the fleet actually re-executes
    // accumulate to the right.
    constexpr size_t NumBuckets = 6;
    auto bucketOf = [](uint32_t H) -> size_t {
      if (H == 0)
        return 0;
      size_t B = 1;
      while (B + 1 < NumBuckets && H >= (1u << B))
        ++B;
      return B;
    };
    std::vector<std::vector<std::string>> Rows(CacheNames.size());
    uint64_t TotalBuckets[NumBuckets] = {};
    std::mutex TotalMutex;
    auto ScanOne = [&](size_t I) {
      const std::string &Name = CacheNames[I];
      std::string Path = std::string(Dir) + "/" + Name;
      auto View =
          CacheFileView::openFile(Path, CacheFileView::Depth::Index);
      if (!View) {
        Rows[I] = {Name, "unreadable: " + View.status().toString(),
                   "",   "",
                   "",   "",
                   "",   "",
                   ""};
        return;
      }
      uint64_t Buckets[NumBuckets] = {};
      uint64_t Total = 0, Max = 0;
      for (uint32_t T = 0; T != View->numTraces(); ++T) {
        uint32_t H = View->entry(T).Heat;
        ++Buckets[bucketOf(H)];
        Total += H;
        Max = std::max<uint64_t>(Max, H);
      }
      Rows[I] = {Name,
                 formatString("%u", View->numTraces()),
                 formatString("%llu", (unsigned long long)Buckets[0]),
                 formatString("%llu", (unsigned long long)Buckets[1]),
                 formatString("%llu", (unsigned long long)Buckets[2]),
                 formatString("%llu", (unsigned long long)Buckets[3]),
                 formatString("%llu", (unsigned long long)Buckets[4]),
                 formatString("%llu", (unsigned long long)Buckets[5]),
                 formatString("%llu / %llu", (unsigned long long)Total,
                              (unsigned long long)Max)};
      std::lock_guard<std::mutex> Guard(TotalMutex);
      for (size_t B = 0; B != NumBuckets; ++B)
        TotalBuckets[B] += Buckets[B];
    };
    if (Pool)
      Pool->parallelFor(CacheNames.size(), ScanOne);
    else
      for (size_t I = 0; I < CacheNames.size(); ++I)
        ScanOne(I);
    TablePrinter Table("per-trace heat (v3 index counters)");
    Table.addRow({"file", "traces", "h=0", "h=1", "2-3", "4-7", "8-15",
                  ">=16", "total/max"});
    for (std::vector<std::string> &Row : Rows)
      Table.addRow(std::move(Row));
    std::vector<std::string> Sum = {"(all)", ""};
    for (size_t B = 0; B != NumBuckets; ++B)
      Sum.push_back(
          formatString("%llu", (unsigned long long)TotalBuckets[B]));
    Sum.push_back("");
    Table.addRow(std::move(Sum));
    Table.print();
    return 0;
  }
  if (Gens) {
    auto Names = listDirectory(Dir);
    if (!Names) {
      std::fprintf(stderr, "pcc-dbstat: %s\n",
                   Names.status().toString().c_str());
      return 1;
    }
    std::vector<std::string> CacheNames;
    for (const std::string &Name : *Names)
      if (Name.size() >= 4 && Name.substr(Name.size() - 4) == ".pcc")
        CacheNames.push_back(Name);
    // Buckets gen 0..3 plus >=4: how much of each cache the finalize
    // promotion tier has proved and published. Fully gen-0 files have
    // either never run hot or always been primed read-only.
    constexpr size_t NumBuckets = 5;
    std::vector<std::vector<std::string>> Rows(CacheNames.size());
    uint64_t TotalBuckets[NumBuckets] = {};
    std::mutex TotalMutex;
    auto ScanOne = [&](size_t I) {
      const std::string &Name = CacheNames[I];
      std::string Path = std::string(Dir) + "/" + Name;
      auto View =
          CacheFileView::openFile(Path, CacheFileView::Depth::Index);
      if (!View) {
        Rows[I] = {Name, "unreadable: " + View.status().toString(),
                   "",   "",
                   "",   "",
                   "",   "",
                   ""};
        return;
      }
      uint64_t Buckets[NumBuckets] = {};
      uint64_t Max = 0;
      uint64_t Promoted = 0, Certified = 0;
      for (uint32_t T = 0; T != View->numTraces(); ++T) {
        uint32_t G = View->entry(T).OptGen;
        ++Buckets[G < NumBuckets - 1 ? G : NumBuckets - 1];
        Max = std::max<uint64_t>(Max, G);
        // Certificate coverage: of the promoted (gen >= 1) bodies, how
        // many carry a validation certificate the trusted checker can
        // consume at prime — the rest pay a full re-proof when a
        // verifying consumer loads them.
        if (G > 0) {
          ++Promoted;
          if (View->certsPresent() && View->certBlobOf(T).first)
            ++Certified;
        }
      }
      std::string CertCol = "-";
      if (View->certSectionCorrupt())
        CertCol = "corrupt";
      else if (Promoted != 0)
        CertCol = formatString("%llu/%llu (%.0f%%)",
                               (unsigned long long)Certified,
                               (unsigned long long)Promoted,
                               100.0 * double(Certified) /
                                   double(Promoted));
      Rows[I] = {Name,
                 formatString("%u", View->numTraces()),
                 formatString("%llu", (unsigned long long)Buckets[0]),
                 formatString("%llu", (unsigned long long)Buckets[1]),
                 formatString("%llu", (unsigned long long)Buckets[2]),
                 formatString("%llu", (unsigned long long)Buckets[3]),
                 formatString("%llu", (unsigned long long)Buckets[4]),
                 formatString("%llu", (unsigned long long)Max),
                 CertCol};
      std::lock_guard<std::mutex> Guard(TotalMutex);
      for (size_t B = 0; B != NumBuckets; ++B)
        TotalBuckets[B] += Buckets[B];
    };
    if (Pool)
      Pool->parallelFor(CacheNames.size(), ScanOne);
    else
      for (size_t I = 0; I < CacheNames.size(); ++I)
        ScanOne(I);
    TablePrinter Table("per-trace optimization generations");
    Table.addRow({"file", "traces", "gen0", "gen1", "gen2", "gen3",
                  ">=4", "max", "certs"});
    for (std::vector<std::string> &Row : Rows)
      Table.addRow(std::move(Row));
    std::vector<std::string> Sum = {"(all)", ""};
    for (size_t B = 0; B != NumBuckets; ++B)
      Sum.push_back(
          formatString("%llu", (unsigned long long)TotalBuckets[B]));
    Sum.push_back("");
    Sum.push_back("");
    Table.addRow(std::move(Sum));
    Table.print();
    return 0;
  }
  if (L2Dir) {
    // Tiered view: one summary line per tier, then the union the tiered
    // store would serve. Quarantine is a local (L1) judgment.
    auto L1 = std::make_shared<DirectoryStore>(Dir);
    auto L2 = std::make_shared<DirectoryStore>(L2Dir);
    if (Pool) {
      L1->setScanPool(Pool.get());
      L2->setScanPool(Pool.get());
    }
    TieredStore Tiered(L1, L2);
    std::printf("tiered cache database (L1 %s, L2 %s)\n", Dir, L2Dir);
    auto printTier = [](const char *Tier, CacheStore &Store) {
      auto S = Store.stats();
      if (!S) {
        std::printf("  %s %s: stats unavailable: %s\n", Tier,
                    Store.location().c_str(),
                    S.status().toString().c_str());
        return;
      }
      std::printf("  %s %-24s %u cache file(s) (%u corrupt, %u "
                  "quarantined), %s, %llu trace(s)\n",
                  Tier, Store.location().c_str(), S->CacheFiles,
                  S->CorruptFiles, S->QuarantinedFiles,
                  formatByteSize(S->DiskBytes).c_str(),
                  (unsigned long long)S->Traces);
    };
    printTier("L1", *L1);
    printTier("L2", *L2);
    if (auto Refs = Tiered.listRefs())
      std::printf("  union                       %zu distinct cache "
                  "entr%s\n",
                  Refs->size(), Refs->size() == 1 ? "y" : "ies");
    return 0;
  }
  if (Locks) {
    auto Infos = Db.backend()->locks();
    if (Infos.empty()) {
      std::printf("no lock files in %s\n", Dir);
      return 0;
    }
    TablePrinter Table("writer-coordination locks");
    Table.addRow({"lock file", "status"});
    for (const LockInfo &Info : Infos)
      Table.addRow({Info.Path, Info.Held ? "held" : "free"});
    Table.print();
    return 0;
  }
  if (Clear) {
    Status S = Db.clear();
    if (!S.ok()) {
      std::fprintf(stderr, "pcc-dbstat: %s\n", S.toString().c_str());
      return 1;
    }
    std::printf("cleared %s\n", Dir);
    return 0;
  }
  if (Shrink) {
    auto Removed = Db.shrinkTo(MaxBytes);
    if (!Removed) {
      std::fprintf(stderr, "pcc-dbstat: %s\n",
                   Removed.status().toString().c_str());
      return 1;
    }
    std::printf("evicted %u cache file(s)\n", *Removed);
  }

  if (Pool)
    Db.backend()->setScanPool(Pool.get());
  auto Stats = Db.stats();
  if (!Stats) {
    std::fprintf(stderr, "pcc-dbstat: %s\n",
                 Stats.status().toString().c_str());
    return 1;
  }
  std::printf("cache database %s\n", Dir);
  std::printf("  cache files   %u (%u corrupt)\n", Stats->CacheFiles,
              Stats->CorruptFiles);
  if (Stats->UnreadableFiles != 0)
    std::printf("  unreadable    %u\n", Stats->UnreadableFiles);
  if (Stats->QuarantinedFiles != 0) {
    std::printf("  quarantined   %u (pcc-dbcheck --quarantine to list)\n",
                Stats->QuarantinedFiles);
    // Break the quarantine down by machine-readable reason code, so a
    // semantic-mismatch epidemic is visible at a glance.
    uint32_t ByCode[6] = {};
    uint32_t WithReplayLog = 0;
    if (auto Entries = Db.quarantined()) {
      for (const QuarantineEntry &E : *Entries) {
        ByCode[static_cast<uint8_t>(E.Code) < 6
                   ? static_cast<uint8_t>(E.Code)
                   : 0]++;
        if (!E.ReplayLog.empty())
          ++WithReplayLog;
      }
      for (uint8_t C = 0; C < 6; ++C)
        if (ByCode[C] != 0)
          std::printf("    %-18s %u\n",
                      quarantineReasonCodeName(
                          static_cast<QuarantineReasonCode>(C)),
                      ByCode[C]);
      if (WithReplayLog != 0) {
        std::printf("    %-18s %u (pcc-dbcheck --replay NAME re-runs "
                    "the evidence)\n",
                    "with replay log", WithReplayLog);
        // One row per entry that carries a recording: which log to
        // hand to pcc-dbcheck --replay for each quarantined cache.
        TablePrinter Table("quarantined entries with recordings");
        Table.addRow({"file", "reason", "replay-log"});
        for (const QuarantineEntry &E : *Entries)
          if (!E.ReplayLog.empty())
            Table.addRow({E.Name, quarantineReasonCodeName(E.Code),
                          E.ReplayLog});
        Table.print();
      }
    }
  }
  std::printf("  on disk       %s\n",
              formatByteSize(Stats->DiskBytes).c_str());
  std::printf("  traces        %llu\n",
              (unsigned long long)Stats->Traces);
  std::printf("  code pool     %s\n",
              formatByteSize(Stats->CodeBytes).c_str());
  std::printf("  data structs  %s\n",
              formatByteSize(Stats->DataBytes).c_str());
  return 0;
}
