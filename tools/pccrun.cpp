//===- tools/pccrun.cpp - run guest programs under the engine --------------===//
//
// The front-end driver: loads a serialized guest executable (plus
// libraries), and runs it natively, under dynamic binary translation,
// or under translation with persistent code caching — with any of the
// canned instrumentation tools.
//
//   pccrun [options] app.mod
//     --lib FILE           register a library module (repeatable)
//     --mode MODE          native | engine | persist   (default engine)
//     --tool TOOL          none | bbcount | memtrace | icount
//     --db DIR             cache database directory (persist mode;
//                          default ./pcc-cache)
//     --l2 DIR             remote (L2) store directory: the database
//                          becomes a tiered store with --db as the
//                          local L1 — reads miss through to DIR and
//                          publishes write through to it, with modeled
//                          remote-link cycle charges on every fetch
//     --store-stats        print the storage backend's entry/byte/lock
//                          counters after the run (persist mode); for
//                          tiered stores, also the per-tier hit/fetch
//                          split
//     --work S:I[,S:I...]  work-list input: run slot S for I iterations
//     --inter-app          allow priming from another app's cache
//     --pic                position-independent translations
//     --xip                write execute-in-place (format v3)
//                          generations: page-aligned payloads later
//                          runs mmap directly as executable trace
//                          bodies instead of copying and decoding
//                          them. Implies --pic. Consuming an XIP
//                          cache needs no flag — prime engages the
//                          in-place path automatically when the file
//                          qualifies
//     --read-only          do not write the cache back
//     --opt-flags          liveness-driven dead-flag-def elision; each
//                          touched trace is proved effect-equivalent by
//                          the translation validator before the
//                          optimized body is accepted
//     --opt-tier           finalize-time AOT optimization tier (persist
//                          mode, tool-less runs): hot traces are merged
//                          into superblocks, constant-propagated and
//                          redundant-load-eliminated in the background,
//                          each promoted body validator-proved, and
//                          written back at a higher optimization
//                          generation that later primes prefer
//     --validate           deep semantic verification (persist mode):
//                          primed traces are revalidated against the
//                          guest code at first decode and finalize
//                          re-proves every trace it writes back
//     --aslr SEED          randomized library bases
//     --stats              print the engine cycle breakdown
//     --disasm             print the app module and exit
//     --fault-plan PLAN    arm the fault injector for the run (see
//                          support/FaultInjector.h for the grammar,
//                          e.g. "enospc:0.1,fsync:0.1,lock:0.25");
//                          armed after guest modules are loaded, so
//                          only cache-database I/O is subjected
//     --jobs N             worker threads for the persistence pipeline
//                          (persist mode): async payload validation at
//                          prime and a background cache publish at
//                          finalize. N <= 1 keeps everything on the
//                          main thread; results are identical either
//                          way
//     --record FILE        record the run's nondeterministic inputs
//                          (modules, input, load bases, cache bytes
//                          served, fault decisions) plus its results
//                          into a .pcrr log (persist mode)
//     --replay FILE        re-drive a recorded run from its log in a
//                          scratch store and assert bit-identical
//                          stats, results and final memory. Exit 0
//                          clean, 3 divergence, 4 unreadable or
//                          version-mismatched log. --jobs still
//                          applies: any worker count must replay
//                          identically
//     --replay-diff FILE   replay FILE twice — persistence on (checked
//                          against the log) and off — and require
//                          guest-observable agreement between the two
//                          legs. Same exit-code contract as --replay
//
//===----------------------------------------------------------------------===//

#include "binary/Assembler.h"
#include "persist/DirectoryStore.h"
#include "persist/Session.h"
#include "persist/TieredStore.h"
#include "replay/Recorder.h"
#include "replay/Replay.h"
#include "support/FaultInjector.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "workloads/Codegen.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace pcc;

namespace {

int usage(int Code) {
  std::fprintf(
      stderr,
      "usage: pccrun [options] app.mod\n"
      "  --lib FILE   --mode native|engine|persist   --tool NAME\n"
      "  --db DIR     --work S:I,S:I   --inter-app   --pic\n"
      "  --l2 DIR     remote store tier behind --db (persist mode)\n"
      "  --store-stats  storage backend counters after the run\n"
      "  --xip        write execute-in-place (v3) generations; "
      "implies --pic\n"
      "  --read-only  --aslr SEED      --stats       --disasm\n"
      "  --opt-flags  validated dead-flag-def elision\n"
      "  --opt-tier   finalize-time AOT promotion of hot traces "
      "(persist)\n"
      "  --validate   deep semantic trace verification (persist)\n"
      "  --fault-plan PLAN  (e.g. enospc:0.1,fsync:0.1,lock:0.25)\n"
      "  --jobs N     persistence pipeline worker threads (persist "
      "mode)\n"
      "  --record FILE  record the run into a .pcrr replay log\n"
      "  --replay FILE  re-drive a recorded run; exit 3 on divergence, "
      "4 on a bad log\n"
      "  --replay-diff FILE  replay with persistence on and off and "
      "compare\n");
  return Code;
}

/// Exit-code contract of the replay modes.
constexpr int ExitReplayDiverged = 3;
constexpr int ExitReplayBadLog = 4;

/// Runs --replay / --replay-diff: both load FILE, re-drive it, and
/// map outcomes onto the exit-code contract.
int runReplayMode(const std::string &LogPath, bool Diff,
                  unsigned Jobs) {
  auto Rec = replay::readLogFile(LogPath);
  if (!Rec) {
    std::fprintf(stderr, "pccrun: %s: %s\n", LogPath.c_str(),
                 Rec.status().toString().c_str());
    return ExitReplayBadLog;
  }
  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<support::ThreadPool>(Jobs,
                                                 /*Background=*/true);
  if (Diff) {
    auto Verdict = replay::replayDiff(*Rec, Pool.get());
    if (!Verdict) {
      std::fprintf(stderr, "pccrun: replay failed: %s\n",
                   Verdict.status().toString().c_str());
      return 1;
    }
    if (!Verdict->empty()) {
      std::fprintf(stderr, "pccrun: replay diverged: %s\n",
                   Verdict->c_str());
      return ExitReplayDiverged;
    }
    std::printf("replay-diff: both legs clean (%llu instructions, "
                "%llu recorded cycles)\n",
                (unsigned long long)Rec->Run.InstructionsExecuted,
                (unsigned long long)Rec->Run.Cycles);
    return 0;
  }
  replay::ReplayOptions Opts;
  Opts.Pool = Pool.get();
  auto Out = replay::replayRun(*Rec, Opts);
  if (!Out) {
    std::fprintf(stderr, "pccrun: replay failed: %s\n",
                 Out.status().toString().c_str());
    return 1;
  }
  std::string Divergence = replay::compareToRecording(*Rec, *Out);
  if (!Divergence.empty()) {
    std::fprintf(stderr, "pccrun: replay diverged: %s\n",
                 Divergence.c_str());
    return ExitReplayDiverged;
  }
  std::printf("replay: bit-identical (%llu instructions, %llu cycles, "
              "%zu quarantine decision(s) reproduced)\n",
              (unsigned long long)Out->Run.InstructionsExecuted,
              (unsigned long long)Out->Run.Cycles,
              Out->Quarantines.size());
  return 0;
}

ErrorOr<std::shared_ptr<binary::Module>>
loadModule(const std::string &Path) {
  auto Bytes = readFile(Path);
  if (!Bytes)
    return Bytes.status();
  auto M = binary::Module::deserialize(*Bytes);
  if (!M)
    return M.status();
  return std::make_shared<binary::Module>(M.take());
}

ErrorOr<std::vector<uint8_t>> parseWork(const std::string &Spec) {
  std::vector<workloads::WorkItem> Items;
  for (const std::string &Part : splitString(Spec, ',')) {
    auto Fields = splitString(Part, ':');
    if (Fields.size() != 2)
      return Status::error(ErrorCode::InvalidArgument,
                           "bad work item: " + Part);
    workloads::WorkItem Item;
    Item.Slot = static_cast<uint32_t>(std::strtoul(
        Fields[0].c_str(), nullptr, 0));
    Item.Iterations = static_cast<uint32_t>(std::strtoul(
        Fields[1].c_str(), nullptr, 0));
    if (Item.Iterations == 0)
      return Status::error(ErrorCode::InvalidArgument,
                           "iterations must be >= 1: " + Part);
    Items.push_back(Item);
  }
  return workloads::encodeWorkload(Items);
}

void printStats(const dbi::EngineStats &S) {
  auto line = [&](const char *Name, uint64_t Cycles) {
    std::printf("  %-22s %12llu cycles (%5.1f%%)\n", Name,
                (unsigned long long)Cycles,
                100.0 * static_cast<double>(Cycles) /
                    static_cast<double>(S.totalCycles()));
  };
  std::printf("engine cycle breakdown:\n");
  line("translation", S.CompileCycles);
  line("dispatch", S.DispatchCycles);
  line("linking", S.LinkCycles);
  line("persistence", S.PersistCycles);
  line("translated exec", S.ExecCycles);
  line("tool analysis", S.ToolCycles);
  line("indirect lookups", S.IndirectCycles);
  line("syscall emulation", S.EmulationCycles);
  std::printf("  traces: %llu compiled, %llu from cache, %llu "
              "executions, %llu links, %llu flushes\n",
              (unsigned long long)S.TracesCompiled,
              (unsigned long long)S.TracesLoadedFromCache,
              (unsigned long long)S.TraceExecutions,
              (unsigned long long)S.LinksCreated,
              (unsigned long long)S.CacheFlushes);
  if (S.FirstTraceReadyCycles != 0)
    std::printf("  first trace ready after %llu cycles\n",
                (unsigned long long)S.FirstTraceReadyCycles);
  if (S.PersistL1Hits != 0 || S.PersistL2Hits != 0)
    std::printf("  tiered prime: %llu L1 hit(s), %llu L2 hit(s), "
                "%llu remote byte(s) fetched\n",
                (unsigned long long)S.PersistL1Hits,
                (unsigned long long)S.PersistL2Hits,
                (unsigned long long)S.PersistRemoteBytes);
  if (S.TracesVerified != 0 || S.VerifyFailures != 0 ||
      S.FlagsElided != 0)
    std::printf("  validation: %llu traces proved equivalent, %llu "
                "rejected, %llu dead defs elided\n",
                (unsigned long long)S.TracesVerified,
                (unsigned long long)S.VerifyFailures,
                (unsigned long long)S.FlagsElided);
  if (S.CertsChecked != 0 || S.ProofsReplayed != 0)
    std::printf("  certificates: %llu checked at prime (%llu rejected), "
                "%llu full re-proof(s) by the validator\n",
                (unsigned long long)S.CertsChecked,
                (unsigned long long)S.CertChecksFailed,
                (unsigned long long)S.ProofsReplayed);
  if (S.TracesPromoted != 0 || S.OptValidatorRejections != 0)
    std::printf("  optimization: %llu traces promoted, %llu "
                "superblocks formed, %llu loads eliminated, %llu "
                "consts folded, %llu validator rejections\n",
                (unsigned long long)S.TracesPromoted,
                (unsigned long long)S.SuperblocksFormed,
                (unsigned long long)S.OptLoadsEliminated,
                (unsigned long long)S.OptConstsFolded,
                (unsigned long long)S.OptValidatorRejections);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string AppPath;
  std::vector<std::string> LibPaths;
  std::string Mode = "engine";
  std::string ToolName = "none";
  std::string DbDir = "pcc-cache";
  std::string L2Dir;
  std::string WorkSpec;
  std::string FaultPlan;
  std::string RecordPath, ReplayPath;
  bool ReplayDiff = false;
  bool InterApp = false, Pic = false, Xip = false, ReadOnly = false;
  bool Stats = false, Disasm = false, StoreStats = false;
  bool OptFlags = false, OptTier = false, Validate = false;
  uint64_t AslrSeed = 0;
  bool Randomized = false;
  unsigned Jobs = 1;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--help")
      return usage(0);
    if (Arg == "--lib") {
      if (const char *V = next())
        LibPaths.push_back(V);
      else
        return usage(2);
    } else if (Arg == "--mode") {
      if (const char *V = next())
        Mode = V;
      else
        return usage(2);
    } else if (Arg == "--tool") {
      if (const char *V = next())
        ToolName = V;
      else
        return usage(2);
    } else if (Arg == "--db") {
      if (const char *V = next())
        DbDir = V;
      else
        return usage(2);
    } else if (Arg == "--l2") {
      if (const char *V = next())
        L2Dir = V;
      else
        return usage(2);
    } else if (Arg == "--work") {
      if (const char *V = next())
        WorkSpec = V;
      else
        return usage(2);
    } else if (Arg == "--fault-plan") {
      if (const char *V = next())
        FaultPlan = V;
      else
        return usage(2);
    } else if (Arg == "--record") {
      if (const char *V = next())
        RecordPath = V;
      else
        return usage(2);
    } else if (Arg == "--replay") {
      if (const char *V = next())
        ReplayPath = V;
      else
        return usage(2);
    } else if (Arg == "--replay-diff") {
      if (const char *V = next()) {
        ReplayPath = V;
        ReplayDiff = true;
      } else
        return usage(2);
    } else if (Arg == "--jobs") {
      if (const char *V = next())
        Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 0));
      else
        return usage(2);
    } else if (Arg == "--aslr") {
      if (const char *V = next()) {
        AslrSeed = std::strtoull(V, nullptr, 0);
        Randomized = true;
      } else
        return usage(2);
    } else if (Arg == "--inter-app")
      InterApp = true;
    else if (Arg == "--pic")
      Pic = true;
    else if (Arg == "--xip")
      Xip = Pic = true; // XIP generations are position independent.
    else if (Arg == "--read-only")
      ReadOnly = true;
    else if (Arg == "--opt-flags")
      OptFlags = true;
    else if (Arg == "--opt-tier")
      OptTier = true;
    else if (Arg == "--validate")
      Validate = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--store-stats")
      StoreStats = true;
    else if (Arg == "--disasm")
      Disasm = true;
    else if (!Arg.empty() && Arg[0] == '-')
      return usage(2);
    else if (AppPath.empty())
      AppPath = Arg;
    else
      return usage(2);
  }
  // Replay modes take everything from the log; no app module needed.
  if (!ReplayPath.empty())
    return runReplayMode(ReplayPath, ReplayDiff, Jobs);
  if (AppPath.empty())
    return usage(2);

  auto App = loadModule(AppPath);
  if (!App) {
    std::fprintf(stderr, "pccrun: %s: %s\n", AppPath.c_str(),
                 App.status().toString().c_str());
    return 1;
  }
  if (Disasm) {
    std::string Text = binary::disassembleModule(**App);
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return 0;
  }

  loader::ModuleRegistry Registry;
  for (const std::string &LibPath : LibPaths) {
    auto Lib = loadModule(LibPath);
    if (!Lib) {
      std::fprintf(stderr, "pccrun: %s: %s\n", LibPath.c_str(),
                   Lib.status().toString().c_str());
      return 1;
    }
    Registry.add(*Lib);
  }

  std::vector<uint8_t> Input;
  if (!WorkSpec.empty()) {
    auto Parsed = parseWork(WorkSpec);
    if (!Parsed) {
      std::fprintf(stderr, "pccrun: %s\n",
                   Parsed.status().toString().c_str());
      return 1;
    }
    Input = Parsed.take();
  }

  std::unique_ptr<dbi::Tool> Tool;
  if (ToolName == "bbcount")
    Tool = std::make_unique<dbi::BasicBlockCounterTool>();
  else if (ToolName == "memtrace")
    Tool = std::make_unique<dbi::MemRefTraceTool>();
  else if (ToolName == "icount")
    Tool = std::make_unique<dbi::InstructionCounterTool>();
  else if (ToolName != "none") {
    std::fprintf(stderr, "pccrun: unknown tool %s\n",
                 ToolName.c_str());
    return 2;
  }

  loader::BasePolicy Policy = Randomized
                                  ? loader::BasePolicy::Randomized
                                  : loader::BasePolicy::Fixed;

  // Arm the fault injector only now, with every guest module already
  // read from disk: the plan exercises the cache database's I/O, not
  // the driver's own module loading.
  if (!FaultPlan.empty()) {
    Status S = FaultInjector::instance().configureFromPlan(FaultPlan);
    if (!S.ok()) {
      std::fprintf(stderr, "pccrun: %s\n", S.toString().c_str());
      return 2;
    }
  }

  vm::RunResult Run;
  dbi::EngineStats EngineStats;
  bool HaveStats = false;

  dbi::EngineOptions EngineOpts;
  EngineOpts.OptimizeFlags = OptFlags;

  if (!RecordPath.empty() && Mode != "persist") {
    std::fprintf(stderr, "pccrun: --record requires --mode persist\n");
    return 2;
  }

  if (Mode == "native") {
    auto R = workloads::runNative(Registry, *App, Input);
    if (!R) {
      std::fprintf(stderr, "pccrun: %s\n",
                   R.status().toString().c_str());
      return 1;
    }
    Run = R.take();
  } else if (Mode == "engine") {
    auto R = workloads::runUnderEngine(Registry, *App, Input,
                                       Tool.get(), EngineOpts, Policy,
                                       AslrSeed);
    if (!R) {
      std::fprintf(stderr, "pccrun: %s\n",
                   R.status().toString().c_str());
      return 1;
    }
    Run = R->Run;
    EngineStats = R->Stats;
    HaveStats = true;
  } else if (Mode == "persist") {
    // With --l2, the database is a tiered store: --db is the local L1,
    // --l2 the shared remote tier every fetch is charged against.
    persist::TieredStore *Tier = nullptr;
    std::shared_ptr<persist::CacheStore> Backend;
    if (L2Dir.empty()) {
      Backend = std::make_shared<persist::DirectoryStore>(DbDir);
    } else {
      auto Tiered = std::make_shared<persist::TieredStore>(
          std::make_shared<persist::DirectoryStore>(DbDir),
          std::make_shared<persist::DirectoryStore>(L2Dir));
      Tier = Tiered.get();
      Backend = std::move(Tiered);
    }
    persist::CacheDatabase Db(Backend);
    persist::PersistOptions Opts;
    Opts.InterApplication = InterApp;
    Opts.PositionIndependent = Pic;
    Opts.ExecuteInPlace = Xip;
    Opts.WriteBack = !ReadOnly;
    Opts.ValidateSemantic = Validate;
    Opts.OptTier = OptTier;
    // The pool outlives the run: runPersistent's session waits for the
    // background publish and any in-flight payload jobs before it
    // returns, so destruction order here is safe. Background priority:
    // the pipeline exists to hide latency, never to compete with the
    // engine thread for the CPU.
    std::unique_ptr<support::ThreadPool> Pool;
    if (Jobs > 1) {
      Pool = std::make_unique<support::ThreadPool>(Jobs,
                                                   /*Background=*/true);
      Opts.Pool = Pool.get();
    }
    if (!RecordPath.empty()) {
      // Recording drives the run itself (it owns the hooks and the
      // tool); the log lands at RecordPath and, if the run quarantined
      // anything, as an attachment next to the quarantined cache.
      replay::RecordSpec Spec;
      size_t Slash = RecordPath.rfind('/');
      Spec.LogName = Slash == std::string::npos
                         ? RecordPath
                         : RecordPath.substr(Slash + 1);
      Spec.ToolName = ToolName;
      Spec.OptimizeFlags = OptFlags;
      Spec.Policy = Policy;
      Spec.AslrSeed = AslrSeed;
      Spec.Tiered = !L2Dir.empty();
      auto Rec = replay::recordRun(Registry, *App, Input, Db, Opts,
                                   Spec);
      if (!Rec) {
        std::fprintf(stderr, "pccrun: record failed: %s\n",
                     Rec.status().toString().c_str());
        return 1;
      }
      Status W = replay::writeLogFile(RecordPath, *Rec);
      if (!W.ok()) {
        std::fprintf(stderr, "pccrun: %s\n", W.toString().c_str());
        return 1;
      }
      std::printf("recorded: %s (%zu cache file(s) observed, %zu "
                  "quarantine decision(s))\n",
                  RecordPath.c_str(), Rec->Caches.size(),
                  Rec->Quarantines.size());
      if (!FaultPlan.empty())
        std::printf("fault plan: %llu fault(s) injected\n",
                    (unsigned long long)
                        FaultInjector::instance().totalInjected());
      std::printf("exit code %u; %llu instructions, %llu syscalls, "
                  "%llu cycles\n",
                  Rec->Run.ExitCode,
                  (unsigned long long)Rec->Run.InstructionsExecuted,
                  (unsigned long long)Rec->Run.SyscallCount,
                  (unsigned long long)Rec->Run.Cycles);
      if (Stats)
        printStats(Rec->Stats);
      return static_cast<int>(Rec->Run.ExitCode);
    }
    auto R = workloads::runPersistent(Registry, *App, Input, Db, Opts,
                                      Tool.get(), EngineOpts, Policy,
                                      AslrSeed);
    if (!R) {
      std::fprintf(stderr, "pccrun: %s\n",
                   R.status().toString().c_str());
      return 1;
    }
    if (Jobs > 1)
      std::printf("persistence pipeline: %u worker(s), %u payload "
                  "job(s) queued at prime\n",
                  Jobs, R->Prime.PayloadJobsQueued);
    std::printf("persistent cache: %s%s\n",
                R->Prime.CacheFound ? "found " : "not found",
                R->Prime.CacheFound
                    ? formatString("(%u traces installed, %u skipped, "
                                   "%u modules invalidated)",
                                   R->Prime.TracesInstalled,
                                   R->Prime.TracesSkipped,
                                   R->Prime.ModulesInvalidated)
                          .c_str()
                    : "");
    if (R->Prime.CacheFound)
      std::printf("persistent cache: %s (%llu payload bytes copied)\n",
                  R->Prime.XipInstalled
                      ? "primed execute-in-place from the mapped payload"
                      : "primed by materializing payload copies",
                  (unsigned long long)R->Prime.PayloadBytesCopied);
    if (R->Prime.CandidatesSkippedIo != 0)
      std::printf("persistent cache: %u candidate(s) skipped on I/O "
                  "errors\n",
                  R->Prime.CandidatesSkippedIo);
    if (R->Stats.PersistStoreRetries != 0)
      std::printf("persistence: %llu store retr%s absorbed\n",
                  (unsigned long long)R->Stats.PersistStoreRetries,
                  R->Stats.PersistStoreRetries == 1 ? "y" : "ies");
    if (R->Stats.PersistDegraded)
      std::printf("persistence degraded to in-memory only: %s\n",
                  R->Stats.PersistDegradeReason.c_str());
    if (R->Stats.PersistL2Hits != 0)
      std::printf("persistent cache: primed by remote read-through "
                  "(%llu bytes fetched over the modeled link)\n",
                  (unsigned long long)R->Stats.PersistRemoteBytes);
    if (StoreStats) {
      auto S = Backend->stats();
      if (S)
        std::printf("store: %u cache file(s) (%u corrupt, %u "
                    "quarantined), %llu bytes on disk, %llu trace(s), "
                    "%zu lock file(s)\n",
                    S->CacheFiles, S->CorruptFiles, S->QuarantinedFiles,
                    (unsigned long long)S->DiskBytes,
                    (unsigned long long)S->Traces,
                    Backend->locks().size());
      else
        std::printf("store: stats unavailable: %s\n",
                    S.status().toString().c_str());
      if (Tier) {
        persist::TieredStats T = Tier->tieredStats();
        std::printf("store tiers: %llu L1 hit(s), %llu L2 hit(s), %llu "
                    "miss(es); %llu fetch(es) / %llu bytes in, %llu "
                    "publish(es) / %llu bytes out; %llu remote "
                    "failure(s)%s\n",
                    (unsigned long long)T.L1Hits,
                    (unsigned long long)T.L2Hits,
                    (unsigned long long)T.Misses,
                    (unsigned long long)T.RemoteFetches,
                    (unsigned long long)T.RemoteFetchBytes,
                    (unsigned long long)T.RemotePublishes,
                    (unsigned long long)T.RemotePublishBytes,
                    (unsigned long long)T.RemoteFailures,
                    T.RemoteDisabled ? "; remote DISABLED (breaker)"
                                     : "");
      }
    }
    Run = R->Run;
    EngineStats = R->Stats;
    HaveStats = true;
  } else {
    return usage(2);
  }

  if (!FaultPlan.empty())
    std::printf("fault plan: %llu fault(s) injected\n",
                (unsigned long long)
                    FaultInjector::instance().totalInjected());

  if (!Run.Output.empty())
    std::printf("guest output: %s\n", Run.Output.c_str());
  for (uint32_t Word : Run.WordLog)
    std::printf("guest word: %u (0x%x)\n", Word, Word);
  std::printf("exit code %u; %llu instructions, %llu syscalls, "
              "%llu cycles\n",
              Run.ExitCode,
              (unsigned long long)Run.InstructionsExecuted,
              (unsigned long long)Run.SyscallCount,
              (unsigned long long)Run.Cycles);
  if (Stats && HaveStats)
    printStats(EngineStats);

  // The tool's concrete type is known from its name (no RTTI).
  if (ToolName == "bbcount") {
    auto *Bb = static_cast<dbi::BasicBlockCounterTool *>(Tool.get());
    std::printf("bbcount: %llu blocks over %zu sites\n",
                (unsigned long long)Bb->totalBlocks(),
                Bb->counts().size());
  } else if (ToolName == "memtrace") {
    auto *Mem = static_cast<dbi::MemRefTraceTool *>(Tool.get());
    std::printf("memtrace: %llu loads, %llu stores, checksum %016llx\n",
                (unsigned long long)Mem->loadCount(),
                (unsigned long long)Mem->storeCount(),
                (unsigned long long)Mem->checksum());
  } else if (ToolName == "icount") {
    auto *Ic = static_cast<dbi::InstructionCounterTool *>(Tool.get());
    std::printf("icount: %llu instructions\n",
                (unsigned long long)Ic->count());
  }
  return static_cast<int>(Run.ExitCode);
}
