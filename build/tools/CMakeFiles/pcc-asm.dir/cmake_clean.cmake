file(REMOVE_RECURSE
  "CMakeFiles/pcc-asm.dir/pcc-asm.cpp.o"
  "CMakeFiles/pcc-asm.dir/pcc-asm.cpp.o.d"
  "pcc-asm"
  "pcc-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
