# Empty dependencies file for pcc-asm.
# This may be replaced when dependencies are built.
