# Empty compiler generated dependencies file for pcc-cacheinspect.
# This may be replaced when dependencies are built.
