# Empty dependencies file for pcc-cacheinspect.
# This may be replaced when dependencies are built.
