file(REMOVE_RECURSE
  "CMakeFiles/pcc-cacheinspect.dir/pcc-cacheinspect.cpp.o"
  "CMakeFiles/pcc-cacheinspect.dir/pcc-cacheinspect.cpp.o.d"
  "pcc-cacheinspect"
  "pcc-cacheinspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc-cacheinspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
