# Empty compiler generated dependencies file for pcc-dbstat.
# This may be replaced when dependencies are built.
