file(REMOVE_RECURSE
  "CMakeFiles/pcc-dbstat.dir/pcc-dbstat.cpp.o"
  "CMakeFiles/pcc-dbstat.dir/pcc-dbstat.cpp.o.d"
  "pcc-dbstat"
  "pcc-dbstat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc-dbstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
