# Empty dependencies file for pccrun.
# This may be replaced when dependencies are built.
