# Empty compiler generated dependencies file for pccrun.
# This may be replaced when dependencies are built.
