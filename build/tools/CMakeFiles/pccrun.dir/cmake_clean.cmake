file(REMOVE_RECURSE
  "CMakeFiles/pccrun.dir/pccrun.cpp.o"
  "CMakeFiles/pccrun.dir/pccrun.cpp.o.d"
  "pccrun"
  "pccrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
