# Empty compiler generated dependencies file for pcc-disasm.
# This may be replaced when dependencies are built.
