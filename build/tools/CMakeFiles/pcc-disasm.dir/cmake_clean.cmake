file(REMOVE_RECURSE
  "CMakeFiles/pcc-disasm.dir/pcc-disasm.cpp.o"
  "CMakeFiles/pcc-disasm.dir/pcc-disasm.cpp.o.d"
  "pcc-disasm"
  "pcc-disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc-disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
