file(REMOVE_RECURSE
  "CMakeFiles/shared_desktop.dir/shared_desktop.cpp.o"
  "CMakeFiles/shared_desktop.dir/shared_desktop.cpp.o.d"
  "shared_desktop"
  "shared_desktop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_desktop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
