# Empty compiler generated dependencies file for shared_desktop.
# This may be replaced when dependencies are built.
