file(REMOVE_RECURSE
  "CMakeFiles/pcc_vm.dir/Exec.cpp.o"
  "CMakeFiles/pcc_vm.dir/Exec.cpp.o.d"
  "CMakeFiles/pcc_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/pcc_vm.dir/Interpreter.cpp.o.d"
  "CMakeFiles/pcc_vm.dir/Machine.cpp.o"
  "CMakeFiles/pcc_vm.dir/Machine.cpp.o.d"
  "libpcc_vm.a"
  "libpcc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
