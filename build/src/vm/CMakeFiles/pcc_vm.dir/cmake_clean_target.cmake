file(REMOVE_RECURSE
  "libpcc_vm.a"
)
