# Empty compiler generated dependencies file for pcc_vm.
# This may be replaced when dependencies are built.
