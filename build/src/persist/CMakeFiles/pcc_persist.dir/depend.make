# Empty dependencies file for pcc_persist.
# This may be replaced when dependencies are built.
