
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persist/CacheDatabase.cpp" "src/persist/CMakeFiles/pcc_persist.dir/CacheDatabase.cpp.o" "gcc" "src/persist/CMakeFiles/pcc_persist.dir/CacheDatabase.cpp.o.d"
  "/root/repo/src/persist/CacheFile.cpp" "src/persist/CMakeFiles/pcc_persist.dir/CacheFile.cpp.o" "gcc" "src/persist/CMakeFiles/pcc_persist.dir/CacheFile.cpp.o.d"
  "/root/repo/src/persist/CacheView.cpp" "src/persist/CMakeFiles/pcc_persist.dir/CacheView.cpp.o" "gcc" "src/persist/CMakeFiles/pcc_persist.dir/CacheView.cpp.o.d"
  "/root/repo/src/persist/Key.cpp" "src/persist/CMakeFiles/pcc_persist.dir/Key.cpp.o" "gcc" "src/persist/CMakeFiles/pcc_persist.dir/Key.cpp.o.d"
  "/root/repo/src/persist/Session.cpp" "src/persist/CMakeFiles/pcc_persist.dir/Session.cpp.o" "gcc" "src/persist/CMakeFiles/pcc_persist.dir/Session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbi/CMakeFiles/pcc_dbi.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pcc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/loader/CMakeFiles/pcc_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/pcc_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
