file(REMOVE_RECURSE
  "libpcc_persist.a"
)
