file(REMOVE_RECURSE
  "CMakeFiles/pcc_persist.dir/CacheDatabase.cpp.o"
  "CMakeFiles/pcc_persist.dir/CacheDatabase.cpp.o.d"
  "CMakeFiles/pcc_persist.dir/CacheFile.cpp.o"
  "CMakeFiles/pcc_persist.dir/CacheFile.cpp.o.d"
  "CMakeFiles/pcc_persist.dir/CacheView.cpp.o"
  "CMakeFiles/pcc_persist.dir/CacheView.cpp.o.d"
  "CMakeFiles/pcc_persist.dir/Key.cpp.o"
  "CMakeFiles/pcc_persist.dir/Key.cpp.o.d"
  "CMakeFiles/pcc_persist.dir/Session.cpp.o"
  "CMakeFiles/pcc_persist.dir/Session.cpp.o.d"
  "libpcc_persist.a"
  "libpcc_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
