# Empty compiler generated dependencies file for pcc_isa.
# This may be replaced when dependencies are built.
