file(REMOVE_RECURSE
  "libpcc_isa.a"
)
