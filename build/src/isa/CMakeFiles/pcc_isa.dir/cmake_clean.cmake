file(REMOVE_RECURSE
  "CMakeFiles/pcc_isa.dir/Instruction.cpp.o"
  "CMakeFiles/pcc_isa.dir/Instruction.cpp.o.d"
  "CMakeFiles/pcc_isa.dir/Opcode.cpp.o"
  "CMakeFiles/pcc_isa.dir/Opcode.cpp.o.d"
  "libpcc_isa.a"
  "libpcc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
