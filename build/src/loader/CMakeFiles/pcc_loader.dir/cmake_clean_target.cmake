file(REMOVE_RECURSE
  "libpcc_loader.a"
)
