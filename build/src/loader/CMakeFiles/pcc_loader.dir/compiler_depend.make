# Empty compiler generated dependencies file for pcc_loader.
# This may be replaced when dependencies are built.
