file(REMOVE_RECURSE
  "CMakeFiles/pcc_loader.dir/AddressSpace.cpp.o"
  "CMakeFiles/pcc_loader.dir/AddressSpace.cpp.o.d"
  "CMakeFiles/pcc_loader.dir/Loader.cpp.o"
  "CMakeFiles/pcc_loader.dir/Loader.cpp.o.d"
  "libpcc_loader.a"
  "libpcc_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
