file(REMOVE_RECURSE
  "libpcc_support.a"
)
