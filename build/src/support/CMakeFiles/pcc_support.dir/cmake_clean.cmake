file(REMOVE_RECURSE
  "CMakeFiles/pcc_support.dir/ByteStream.cpp.o"
  "CMakeFiles/pcc_support.dir/ByteStream.cpp.o.d"
  "CMakeFiles/pcc_support.dir/Error.cpp.o"
  "CMakeFiles/pcc_support.dir/Error.cpp.o.d"
  "CMakeFiles/pcc_support.dir/FileSystem.cpp.o"
  "CMakeFiles/pcc_support.dir/FileSystem.cpp.o.d"
  "CMakeFiles/pcc_support.dir/Hashing.cpp.o"
  "CMakeFiles/pcc_support.dir/Hashing.cpp.o.d"
  "CMakeFiles/pcc_support.dir/StringUtils.cpp.o"
  "CMakeFiles/pcc_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/pcc_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/pcc_support.dir/TablePrinter.cpp.o.d"
  "libpcc_support.a"
  "libpcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
