# Empty dependencies file for pcc_support.
# This may be replaced when dependencies are built.
