file(REMOVE_RECURSE
  "libpcc_workloads.a"
)
