file(REMOVE_RECURSE
  "CMakeFiles/pcc_workloads.dir/Codegen.cpp.o"
  "CMakeFiles/pcc_workloads.dir/Codegen.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/Coverage.cpp.o"
  "CMakeFiles/pcc_workloads.dir/Coverage.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/Gui.cpp.o"
  "CMakeFiles/pcc_workloads.dir/Gui.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/Oracle.cpp.o"
  "CMakeFiles/pcc_workloads.dir/Oracle.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/Runner.cpp.o"
  "CMakeFiles/pcc_workloads.dir/Runner.cpp.o.d"
  "CMakeFiles/pcc_workloads.dir/Spec2k.cpp.o"
  "CMakeFiles/pcc_workloads.dir/Spec2k.cpp.o.d"
  "libpcc_workloads.a"
  "libpcc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
