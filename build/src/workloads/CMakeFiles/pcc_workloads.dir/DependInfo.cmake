
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Codegen.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/Codegen.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/Codegen.cpp.o.d"
  "/root/repo/src/workloads/Coverage.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/Coverage.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/Coverage.cpp.o.d"
  "/root/repo/src/workloads/Gui.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/Gui.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/Gui.cpp.o.d"
  "/root/repo/src/workloads/Oracle.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/Oracle.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/Oracle.cpp.o.d"
  "/root/repo/src/workloads/Runner.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/Runner.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/Runner.cpp.o.d"
  "/root/repo/src/workloads/Spec2k.cpp" "src/workloads/CMakeFiles/pcc_workloads.dir/Spec2k.cpp.o" "gcc" "src/workloads/CMakeFiles/pcc_workloads.dir/Spec2k.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/persist/CMakeFiles/pcc_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/dbi/CMakeFiles/pcc_dbi.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pcc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/loader/CMakeFiles/pcc_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/pcc_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
