file(REMOVE_RECURSE
  "libpcc_dbi.a"
)
