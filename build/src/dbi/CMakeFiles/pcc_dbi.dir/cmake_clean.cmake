file(REMOVE_RECURSE
  "CMakeFiles/pcc_dbi.dir/CodeCache.cpp.o"
  "CMakeFiles/pcc_dbi.dir/CodeCache.cpp.o.d"
  "CMakeFiles/pcc_dbi.dir/Compiler.cpp.o"
  "CMakeFiles/pcc_dbi.dir/Compiler.cpp.o.d"
  "CMakeFiles/pcc_dbi.dir/Engine.cpp.o"
  "CMakeFiles/pcc_dbi.dir/Engine.cpp.o.d"
  "CMakeFiles/pcc_dbi.dir/Tool.cpp.o"
  "CMakeFiles/pcc_dbi.dir/Tool.cpp.o.d"
  "CMakeFiles/pcc_dbi.dir/Trace.cpp.o"
  "CMakeFiles/pcc_dbi.dir/Trace.cpp.o.d"
  "libpcc_dbi.a"
  "libpcc_dbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_dbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
