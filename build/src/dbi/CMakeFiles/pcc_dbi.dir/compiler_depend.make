# Empty compiler generated dependencies file for pcc_dbi.
# This may be replaced when dependencies are built.
