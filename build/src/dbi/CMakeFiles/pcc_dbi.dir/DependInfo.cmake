
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbi/CodeCache.cpp" "src/dbi/CMakeFiles/pcc_dbi.dir/CodeCache.cpp.o" "gcc" "src/dbi/CMakeFiles/pcc_dbi.dir/CodeCache.cpp.o.d"
  "/root/repo/src/dbi/Compiler.cpp" "src/dbi/CMakeFiles/pcc_dbi.dir/Compiler.cpp.o" "gcc" "src/dbi/CMakeFiles/pcc_dbi.dir/Compiler.cpp.o.d"
  "/root/repo/src/dbi/Engine.cpp" "src/dbi/CMakeFiles/pcc_dbi.dir/Engine.cpp.o" "gcc" "src/dbi/CMakeFiles/pcc_dbi.dir/Engine.cpp.o.d"
  "/root/repo/src/dbi/Tool.cpp" "src/dbi/CMakeFiles/pcc_dbi.dir/Tool.cpp.o" "gcc" "src/dbi/CMakeFiles/pcc_dbi.dir/Tool.cpp.o.d"
  "/root/repo/src/dbi/Trace.cpp" "src/dbi/CMakeFiles/pcc_dbi.dir/Trace.cpp.o" "gcc" "src/dbi/CMakeFiles/pcc_dbi.dir/Trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/pcc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/loader/CMakeFiles/pcc_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/pcc_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
