file(REMOVE_RECURSE
  "CMakeFiles/pcc_binary.dir/Assembler.cpp.o"
  "CMakeFiles/pcc_binary.dir/Assembler.cpp.o.d"
  "CMakeFiles/pcc_binary.dir/Module.cpp.o"
  "CMakeFiles/pcc_binary.dir/Module.cpp.o.d"
  "libpcc_binary.a"
  "libpcc_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
