file(REMOVE_RECURSE
  "libpcc_binary.a"
)
