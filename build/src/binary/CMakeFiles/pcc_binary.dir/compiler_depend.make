# Empty compiler generated dependencies file for pcc_binary.
# This may be replaced when dependencies are built.
