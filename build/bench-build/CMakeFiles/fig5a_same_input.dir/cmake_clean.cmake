file(REMOVE_RECURSE
  "../bench/fig5a_same_input"
  "../bench/fig5a_same_input.pdb"
  "CMakeFiles/fig5a_same_input.dir/fig5a_same_input.cpp.o"
  "CMakeFiles/fig5a_same_input.dir/fig5a_same_input.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_same_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
