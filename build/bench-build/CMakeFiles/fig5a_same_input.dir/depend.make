# Empty dependencies file for fig5a_same_input.
# This may be replaced when dependencies are built.
