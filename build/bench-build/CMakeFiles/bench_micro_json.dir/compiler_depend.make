# Empty custom commands generated dependencies file for bench_micro_json.
# This may be replaced when dependencies are built.
