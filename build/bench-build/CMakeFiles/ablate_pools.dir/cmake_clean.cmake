file(REMOVE_RECURSE
  "../bench/ablate_pools"
  "../bench/ablate_pools.pdb"
  "CMakeFiles/ablate_pools.dir/ablate_pools.cpp.o"
  "CMakeFiles/ablate_pools.dir/ablate_pools.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
