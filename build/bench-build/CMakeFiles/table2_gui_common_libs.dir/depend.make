# Empty dependencies file for table2_gui_common_libs.
# This may be replaced when dependencies are built.
