file(REMOVE_RECURSE
  "../bench/table2_gui_common_libs"
  "../bench/table2_gui_common_libs.pdb"
  "CMakeFiles/table2_gui_common_libs.dir/table2_gui_common_libs.cpp.o"
  "CMakeFiles/table2_gui_common_libs.dir/table2_gui_common_libs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_gui_common_libs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
