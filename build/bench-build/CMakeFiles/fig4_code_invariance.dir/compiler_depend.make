# Empty compiler generated dependencies file for fig4_code_invariance.
# This may be replaced when dependencies are built.
