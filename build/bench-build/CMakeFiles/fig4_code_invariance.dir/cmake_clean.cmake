file(REMOVE_RECURSE
  "../bench/fig4_code_invariance"
  "../bench/fig4_code_invariance.pdb"
  "CMakeFiles/fig4_code_invariance.dir/fig4_code_invariance.cpp.o"
  "CMakeFiles/fig4_code_invariance.dir/fig4_code_invariance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_code_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
