file(REMOVE_RECURSE
  "../bench/table1_gui_libcode"
  "../bench/table1_gui_libcode.pdb"
  "CMakeFiles/table1_gui_libcode.dir/table1_gui_libcode.cpp.o"
  "CMakeFiles/table1_gui_libcode.dir/table1_gui_libcode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_gui_libcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
