# Empty compiler generated dependencies file for table1_gui_libcode.
# This may be replaced when dependencies are built.
