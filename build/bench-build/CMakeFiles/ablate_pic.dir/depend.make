# Empty dependencies file for ablate_pic.
# This may be replaced when dependencies are built.
