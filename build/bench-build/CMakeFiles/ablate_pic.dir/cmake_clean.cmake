file(REMOVE_RECURSE
  "../bench/ablate_pic"
  "../bench/ablate_pic.pdb"
  "CMakeFiles/ablate_pic.dir/ablate_pic.cpp.o"
  "CMakeFiles/ablate_pic.dir/ablate_pic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
