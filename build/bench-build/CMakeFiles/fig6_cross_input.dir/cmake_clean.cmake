file(REMOVE_RECURSE
  "../bench/fig6_cross_input"
  "../bench/fig6_cross_input.pdb"
  "CMakeFiles/fig6_cross_input.dir/fig6_cross_input.cpp.o"
  "CMakeFiles/fig6_cross_input.dir/fig6_cross_input.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cross_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
