# Empty compiler generated dependencies file for fig6_cross_input.
# This may be replaced when dependencies are built.
