file(REMOVE_RECURSE
  "../bench/fig2b_gui_startup"
  "../bench/fig2b_gui_startup.pdb"
  "CMakeFiles/fig2b_gui_startup.dir/fig2b_gui_startup.cpp.o"
  "CMakeFiles/fig2b_gui_startup.dir/fig2b_gui_startup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_gui_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
