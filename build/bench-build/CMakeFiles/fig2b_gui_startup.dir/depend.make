# Empty dependencies file for fig2b_gui_startup.
# This may be replaced when dependencies are built.
