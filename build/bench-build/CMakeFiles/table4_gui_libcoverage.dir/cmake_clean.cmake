file(REMOVE_RECURSE
  "../bench/table4_gui_libcoverage"
  "../bench/table4_gui_libcoverage.pdb"
  "CMakeFiles/table4_gui_libcoverage.dir/table4_gui_libcoverage.cpp.o"
  "CMakeFiles/table4_gui_libcoverage.dir/table4_gui_libcoverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_gui_libcoverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
