# Empty dependencies file for table4_gui_libcoverage.
# This may be replaced when dependencies are built.
