file(REMOVE_RECURSE
  "../bench/ablate_eviction"
  "../bench/ablate_eviction.pdb"
  "CMakeFiles/ablate_eviction.dir/ablate_eviction.cpp.o"
  "CMakeFiles/ablate_eviction.dir/ablate_eviction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
