file(REMOVE_RECURSE
  "../bench/fig9_cache_sizes"
  "../bench/fig9_cache_sizes.pdb"
  "CMakeFiles/fig9_cache_sizes.dir/fig9_cache_sizes.cpp.o"
  "CMakeFiles/fig9_cache_sizes.dir/fig9_cache_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cache_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
