# Empty compiler generated dependencies file for fig9_cache_sizes.
# This may be replaced when dependencies are built.
