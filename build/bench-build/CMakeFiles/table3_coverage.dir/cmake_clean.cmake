file(REMOVE_RECURSE
  "../bench/table3_coverage"
  "../bench/table3_coverage.pdb"
  "CMakeFiles/table3_coverage.dir/table3_coverage.cpp.o"
  "CMakeFiles/table3_coverage.dir/table3_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
