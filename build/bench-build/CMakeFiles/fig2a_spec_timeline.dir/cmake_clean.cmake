file(REMOVE_RECURSE
  "../bench/fig2a_spec_timeline"
  "../bench/fig2a_spec_timeline.pdb"
  "CMakeFiles/fig2a_spec_timeline.dir/fig2a_spec_timeline.cpp.o"
  "CMakeFiles/fig2a_spec_timeline.dir/fig2a_spec_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_spec_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
