# Empty dependencies file for fig2a_spec_timeline.
# This may be replaced when dependencies are built.
