# Empty compiler generated dependencies file for fig5b_overhead_breakdown.
# This may be replaced when dependencies are built.
