file(REMOVE_RECURSE
  "../bench/fig5b_overhead_breakdown"
  "../bench/fig5b_overhead_breakdown.pdb"
  "CMakeFiles/fig5b_overhead_breakdown.dir/fig5b_overhead_breakdown.cpp.o"
  "CMakeFiles/fig5b_overhead_breakdown.dir/fig5b_overhead_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
