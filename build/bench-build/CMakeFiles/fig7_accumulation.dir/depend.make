# Empty dependencies file for fig7_accumulation.
# This may be replaced when dependencies are built.
