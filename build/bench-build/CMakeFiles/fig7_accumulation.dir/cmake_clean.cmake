file(REMOVE_RECURSE
  "../bench/fig7_accumulation"
  "../bench/fig7_accumulation.pdb"
  "CMakeFiles/fig7_accumulation.dir/fig7_accumulation.cpp.o"
  "CMakeFiles/fig7_accumulation.dir/fig7_accumulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
