# Empty dependencies file for ablate_linking.
# This may be replaced when dependencies are built.
