file(REMOVE_RECURSE
  "../bench/ablate_linking"
  "../bench/ablate_linking.pdb"
  "CMakeFiles/ablate_linking.dir/ablate_linking.cpp.o"
  "CMakeFiles/ablate_linking.dir/ablate_linking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
