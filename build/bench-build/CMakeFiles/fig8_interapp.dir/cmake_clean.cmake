file(REMOVE_RECURSE
  "../bench/fig8_interapp"
  "../bench/fig8_interapp.pdb"
  "CMakeFiles/fig8_interapp.dir/fig8_interapp.cpp.o"
  "CMakeFiles/fig8_interapp.dir/fig8_interapp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
