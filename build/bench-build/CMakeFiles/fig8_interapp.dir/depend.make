# Empty dependencies file for fig8_interapp.
# This may be replaced when dependencies are built.
