# Empty compiler generated dependencies file for pcc_tests.
# This may be replaced when dependencies are built.
