
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assembler_test.cpp" "tests/CMakeFiles/pcc_tests.dir/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/assembler_test.cpp.o.d"
  "/root/repo/tests/binary_loader_test.cpp" "tests/CMakeFiles/pcc_tests.dir/binary_loader_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/binary_loader_test.cpp.o.d"
  "/root/repo/tests/dbi_test.cpp" "tests/CMakeFiles/pcc_tests.dir/dbi_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/dbi_test.cpp.o.d"
  "/root/repo/tests/isa_test.cpp" "tests/CMakeFiles/pcc_tests.dir/isa_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/isa_test.cpp.o.d"
  "/root/repo/tests/persist_db_test.cpp" "tests/CMakeFiles/pcc_tests.dir/persist_db_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/persist_db_test.cpp.o.d"
  "/root/repo/tests/persist_test.cpp" "tests/CMakeFiles/pcc_tests.dir/persist_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/persist_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/pcc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/session_edge_test.cpp" "tests/CMakeFiles/pcc_tests.dir/session_edge_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/session_edge_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/pcc_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/threads_test.cpp" "tests/CMakeFiles/pcc_tests.dir/threads_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/threads_test.cpp.o.d"
  "/root/repo/tests/vm_test.cpp" "tests/CMakeFiles/pcc_tests.dir/vm_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/vm_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/pcc_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/pcc_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pcc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/pcc_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/dbi/CMakeFiles/pcc_dbi.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pcc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/loader/CMakeFiles/pcc_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/pcc_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
