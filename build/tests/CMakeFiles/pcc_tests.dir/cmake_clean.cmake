file(REMOVE_RECURSE
  "CMakeFiles/pcc_tests.dir/assembler_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/assembler_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/binary_loader_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/binary_loader_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/dbi_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/dbi_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/isa_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/isa_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/persist_db_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/persist_db_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/persist_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/persist_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/property_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/session_edge_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/session_edge_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/support_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/support_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/threads_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/threads_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/vm_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/vm_test.cpp.o.d"
  "CMakeFiles/pcc_tests.dir/workloads_test.cpp.o"
  "CMakeFiles/pcc_tests.dir/workloads_test.cpp.o.d"
  "pcc_tests"
  "pcc_tests.pdb"
  "pcc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
