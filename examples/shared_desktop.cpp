//===- examples/shared_desktop.cpp ----------------------------------------===//
//
// Inter-application persistence on a desktop (Section 4.5): several GUI
// applications sharing libraries start up one after another. The first
// app pays full translation cost; each later app reuses the library
// translations already in the database, so the whole desktop session
// warms up.
//
//===----------------------------------------------------------------------===//

#include "dbi/CostModel.h"
#include "persist/Residency.h"
#include "persist/Session.h"
#include "support/FileSystem.h"
#include "workloads/Gui.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define PCC_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace pcc;

int main() {
  workloads::GuiSuite Suite = workloads::buildGuiSuite();
  auto Dir = createUniqueTempDir("pcc-desktop");
  if (!Dir)
    return 1;
  persist::CacheDatabase Db(*Dir);

  std::printf("launching the desktop session (inter-application "
              "persistence on)...\n\n");
  std::printf("%-14s %12s %12s %10s %12s\n", "app", "startup Kc",
              "vs cold", "compiled", "from cache");

  // Cold baselines for comparison.
  std::vector<uint64_t> ColdCycles;
  for (const workloads::GuiApp &App : Suite.Apps) {
    auto Cold = workloads::runUnderEngine(Suite.Registry, App.App,
                                          App.StartupInput);
    if (!Cold)
      return 1;
    ColdCycles.push_back(Cold->Run.Cycles);
  }

  // The session: apps start one after another, each allowed to prime
  // from any compatible cache in the shared database.
  persist::PersistOptions Opts;
  Opts.InterApplication = true;
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const workloads::GuiApp &App = Suite.Apps[I];
    auto R = workloads::runPersistent(Suite.Registry, App.App,
                                      App.StartupInput, Db, Opts);
    if (!R)
      return 1;
    std::printf("%-14s %12llu %11.1f%% %10llu %12u\n", App.Name.c_str(),
                (unsigned long long)(R->Run.Cycles / 1000),
                100.0 * (1.0 - static_cast<double>(R->Run.Cycles) /
                                   static_cast<double>(ColdCycles[I])),
                (unsigned long long)R->Stats.TracesCompiled,
                R->Prime.TracesInstalled);
  }

  std::printf("\nsecond login: every app now has its own accumulated "
              "cache...\n\n");
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const workloads::GuiApp &App = Suite.Apps[I];
    auto R = workloads::runPersistent(Suite.Registry, App.App,
                                      App.StartupInput, Db, Opts);
    if (!R)
      return 1;
    std::printf("%-14s %12llu %11.1f%% %10llu %12u\n", App.Name.c_str(),
                (unsigned long long)(R->Run.Cycles / 1000),
                100.0 * (1.0 - static_cast<double>(R->Run.Cycles) /
                                   static_cast<double>(ColdCycles[I])),
                (unsigned long long)R->Stats.TracesCompiled,
                R->Prime.TracesInstalled);
  }
  std::printf("\nthe first app of the first login pays the translation "
              "bill; everything after rides the database.\n");

#if PCC_HAVE_FORK
  // Login storm: every app launches twice at the same instant, one
  // process per session, all sharing the database — the paper's Oracle
  // deployment in miniature. Concurrent finalizers of one slot are
  // merged by the store's transactional publish, so no session's
  // translations are clobbered and no file is ever half-written.
  std::printf("\nlogin storm: every app twice, all sessions "
              "concurrent...\n");
  std::vector<pid_t> Children;
  for (const workloads::GuiApp &App : Suite.Apps)
    for (int Copy = 0; Copy != 2; ++Copy) {
      pid_t Pid = fork();
      if (Pid < 0)
        continue;
      if (Pid == 0) {
        auto R = workloads::runPersistent(Suite.Registry, App.App,
                                          App.StartupInput, Db, Opts);
        _exit(R ? 0 : 1);
      }
      Children.push_back(Pid);
    }
  unsigned Succeeded = 0;
  for (pid_t Pid : Children) {
    int WStatus = 0;
    if (waitpid(Pid, &WStatus, 0) == Pid && WIFEXITED(WStatus) &&
        WEXITSTATUS(WStatus) == 0)
      ++Succeeded;
  }
  std::printf("  %u/%zu concurrent sessions finalized cleanly\n",
              Succeeded, Children.size());
  auto StormStats = Db.stats();
  if (StormStats)
    std::printf("  database: %u cache file(s), %u corrupt, %llu "
                "traces\n",
                StormStats->CacheFiles, StormStats->CorruptFiles,
                (unsigned long long)StormStats->Traces);
#endif

  // Execute-in-place login storm. First migrate every app's cache to an
  // XIP (v3) generation — one run per app, finalized position-
  // independent with a page-aligned payload — then launch 120 simulated
  // desktop processes at once, every one priming by mmap instead of
  // decode+copy. The shared residency map models the OS page cache:
  // only the first toucher of each payload page pays demand-paged I/O,
  // everyone else takes a soft fault on the one physical copy.
  std::printf("\nxip login storm: migrating caches to execute-in-place "
              "(v3)...\n");
  persist::PersistOptions XipOpts = Opts;
  XipOpts.PositionIndependent = true;
  XipOpts.ExecuteInPlace = true;
  for (const workloads::GuiApp &App : Suite.Apps) {
    auto R = workloads::runPersistent(Suite.Registry, App.App,
                                      App.StartupInput, Db, XipOpts);
    if (!R)
      return 1;
  }

  const unsigned NumProcesses = 120;
  std::printf("  %u concurrent simulated processes, one shared page "
              "cache...\n",
              NumProcesses);
  persist::SharedResidencyMap PageCache;
  persist::PersistOptions StormOpts = XipOpts;
  StormOpts.WriteBack = false; // Readers: the generation stays stable.
  StormOpts.SharedResidency = &PageCache;

  struct ProcessResult {
    bool Ok = false;
    bool Xip = false;
    uint64_t SharedHits = 0;
    uint64_t PersistCycles = 0;
  };
  std::vector<ProcessResult> Results(NumProcesses);
  std::vector<std::thread> Threads;
  Threads.reserve(NumProcesses);
  for (unsigned P = 0; P != NumProcesses; ++P)
    Threads.emplace_back([&, P] {
      const workloads::GuiApp &App = Suite.Apps[P % Suite.Apps.size()];
      auto R = workloads::runPersistent(Suite.Registry, App.App,
                                        App.StartupInput, Db, StormOpts);
      if (!R)
        return;
      Results[P] = {true, R->Prime.XipInstalled,
                    R->Stats.PersistSharedPageHits,
                    R->Stats.PersistCycles};
    });
  for (std::thread &T : Threads)
    T.join();

  unsigned Ran = 0, Inplace = 0;
  uint64_t SharedHits = 0;
  for (const ProcessResult &R : Results) {
    Ran += R.Ok;
    Inplace += R.Xip;
    SharedHits += R.SharedHits;
  }
  const uint64_t PhysicalPages = PageCache.residentPages();
  const uint64_t VirtualTouches = SharedHits + PhysicalPages;
  const dbi::CostModel Costs;
  const uint64_t SavedCycles =
      SharedHits * (Costs.PersistPageTouchCycles -
                    Costs.SharedPageTouchCycles);
  const uint64_t UnsharedBill =
      VirtualTouches * Costs.PersistPageTouchCycles;
  std::printf("  sessions       %u/%u ran, %u primed execute-in-place "
              "(0 payload bytes copied)\n",
              Ran, NumProcesses, Inplace);
  std::printf("  page touches   %llu across all processes\n",
              (unsigned long long)VirtualTouches);
  std::printf("  physical pages %llu — one shared copy per library "
              "cache page\n",
              (unsigned long long)PhysicalPages);
  std::printf("  soft faults    %llu (later processes reusing resident "
              "pages)\n",
              (unsigned long long)SharedHits);
  std::printf("  modeled I/O savings: %llu Kc of %llu Kc demand-paging "
              "bill (%.1f%%)\n",
              (unsigned long long)(SavedCycles / 1000),
              (unsigned long long)(UnsharedBill / 1000),
              UnsharedBill
                  ? 100.0 * static_cast<double>(SavedCycles) /
                        static_cast<double>(UnsharedBill)
                  : 0.0);

  (void)removeRecursively(*Dir);
  return 0;
}
