//===- examples/shared_desktop.cpp ----------------------------------------===//
//
// Inter-application persistence on a desktop (Section 4.5): several GUI
// applications sharing libraries start up one after another. The first
// app pays full translation cost; each later app reuses the library
// translations already in the database, so the whole desktop session
// warms up.
//
//===----------------------------------------------------------------------===//

#include "persist/Session.h"
#include "support/FileSystem.h"
#include "workloads/Gui.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace pcc;

int main() {
  workloads::GuiSuite Suite = workloads::buildGuiSuite();
  auto Dir = createUniqueTempDir("pcc-desktop");
  if (!Dir)
    return 1;
  persist::CacheDatabase Db(*Dir);

  std::printf("launching the desktop session (inter-application "
              "persistence on)...\n\n");
  std::printf("%-14s %12s %12s %10s %12s\n", "app", "startup Kc",
              "vs cold", "compiled", "from cache");

  // Cold baselines for comparison.
  std::vector<uint64_t> ColdCycles;
  for (const workloads::GuiApp &App : Suite.Apps) {
    auto Cold = workloads::runUnderEngine(Suite.Registry, App.App,
                                          App.StartupInput);
    if (!Cold)
      return 1;
    ColdCycles.push_back(Cold->Run.Cycles);
  }

  // The session: apps start one after another, each allowed to prime
  // from any compatible cache in the shared database.
  persist::PersistOptions Opts;
  Opts.InterApplication = true;
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const workloads::GuiApp &App = Suite.Apps[I];
    auto R = workloads::runPersistent(Suite.Registry, App.App,
                                      App.StartupInput, Db, Opts);
    if (!R)
      return 1;
    std::printf("%-14s %12llu %11.1f%% %10llu %12u\n", App.Name.c_str(),
                (unsigned long long)(R->Run.Cycles / 1000),
                100.0 * (1.0 - static_cast<double>(R->Run.Cycles) /
                                   static_cast<double>(ColdCycles[I])),
                (unsigned long long)R->Stats.TracesCompiled,
                R->Prime.TracesInstalled);
  }

  std::printf("\nsecond login: every app now has its own accumulated "
              "cache...\n\n");
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const workloads::GuiApp &App = Suite.Apps[I];
    auto R = workloads::runPersistent(Suite.Registry, App.App,
                                      App.StartupInput, Db, Opts);
    if (!R)
      return 1;
    std::printf("%-14s %12llu %11.1f%% %10llu %12u\n", App.Name.c_str(),
                (unsigned long long)(R->Run.Cycles / 1000),
                100.0 * (1.0 - static_cast<double>(R->Run.Cycles) /
                                   static_cast<double>(ColdCycles[I])),
                (unsigned long long)R->Stats.TracesCompiled,
                R->Prime.TracesInstalled);
  }
  std::printf("\nthe first app of the first login pays the translation "
              "bill; everything after rides the database.\n");
  (void)removeRecursively(*Dir);
  return 0;
}
