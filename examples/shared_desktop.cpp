//===- examples/shared_desktop.cpp ----------------------------------------===//
//
// Inter-application persistence on a desktop (Section 4.5): several GUI
// applications sharing libraries start up one after another. The first
// app pays full translation cost; each later app reuses the library
// translations already in the database, so the whole desktop session
// warms up.
//
//===----------------------------------------------------------------------===//

#include "persist/Session.h"
#include "support/FileSystem.h"
#include "workloads/Gui.h"
#include "workloads/Runner.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#define PCC_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace pcc;

int main() {
  workloads::GuiSuite Suite = workloads::buildGuiSuite();
  auto Dir = createUniqueTempDir("pcc-desktop");
  if (!Dir)
    return 1;
  persist::CacheDatabase Db(*Dir);

  std::printf("launching the desktop session (inter-application "
              "persistence on)...\n\n");
  std::printf("%-14s %12s %12s %10s %12s\n", "app", "startup Kc",
              "vs cold", "compiled", "from cache");

  // Cold baselines for comparison.
  std::vector<uint64_t> ColdCycles;
  for (const workloads::GuiApp &App : Suite.Apps) {
    auto Cold = workloads::runUnderEngine(Suite.Registry, App.App,
                                          App.StartupInput);
    if (!Cold)
      return 1;
    ColdCycles.push_back(Cold->Run.Cycles);
  }

  // The session: apps start one after another, each allowed to prime
  // from any compatible cache in the shared database.
  persist::PersistOptions Opts;
  Opts.InterApplication = true;
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const workloads::GuiApp &App = Suite.Apps[I];
    auto R = workloads::runPersistent(Suite.Registry, App.App,
                                      App.StartupInput, Db, Opts);
    if (!R)
      return 1;
    std::printf("%-14s %12llu %11.1f%% %10llu %12u\n", App.Name.c_str(),
                (unsigned long long)(R->Run.Cycles / 1000),
                100.0 * (1.0 - static_cast<double>(R->Run.Cycles) /
                                   static_cast<double>(ColdCycles[I])),
                (unsigned long long)R->Stats.TracesCompiled,
                R->Prime.TracesInstalled);
  }

  std::printf("\nsecond login: every app now has its own accumulated "
              "cache...\n\n");
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const workloads::GuiApp &App = Suite.Apps[I];
    auto R = workloads::runPersistent(Suite.Registry, App.App,
                                      App.StartupInput, Db, Opts);
    if (!R)
      return 1;
    std::printf("%-14s %12llu %11.1f%% %10llu %12u\n", App.Name.c_str(),
                (unsigned long long)(R->Run.Cycles / 1000),
                100.0 * (1.0 - static_cast<double>(R->Run.Cycles) /
                                   static_cast<double>(ColdCycles[I])),
                (unsigned long long)R->Stats.TracesCompiled,
                R->Prime.TracesInstalled);
  }
  std::printf("\nthe first app of the first login pays the translation "
              "bill; everything after rides the database.\n");

#if PCC_HAVE_FORK
  // Login storm: every app launches twice at the same instant, one
  // process per session, all sharing the database — the paper's Oracle
  // deployment in miniature. Concurrent finalizers of one slot are
  // merged by the store's transactional publish, so no session's
  // translations are clobbered and no file is ever half-written.
  std::printf("\nlogin storm: every app twice, all sessions "
              "concurrent...\n");
  std::vector<pid_t> Children;
  for (const workloads::GuiApp &App : Suite.Apps)
    for (int Copy = 0; Copy != 2; ++Copy) {
      pid_t Pid = fork();
      if (Pid < 0)
        continue;
      if (Pid == 0) {
        auto R = workloads::runPersistent(Suite.Registry, App.App,
                                          App.StartupInput, Db, Opts);
        _exit(R ? 0 : 1);
      }
      Children.push_back(Pid);
    }
  unsigned Succeeded = 0;
  for (pid_t Pid : Children) {
    int WStatus = 0;
    if (waitpid(Pid, &WStatus, 0) == Pid && WIFEXITED(WStatus) &&
        WEXITSTATUS(WStatus) == 0)
      ++Succeeded;
  }
  std::printf("  %u/%zu concurrent sessions finalized cleanly\n",
              Succeeded, Children.size());
  auto StormStats = Db.stats();
  if (StormStats)
    std::printf("  database: %u cache file(s), %u corrupt, %llu "
                "traces\n",
                StormStats->CacheFiles, StormStats->CorruptFiles,
                (unsigned long long)StormStats->Traces);
#endif

  (void)removeRecursively(*Dir);
  return 0;
}
