//===- examples/regression_suite.cpp --------------------------------------===//
//
// The paper's flagship use case (Section 2.2): running a large battery
// of short regression tests under instrumentation. Each test is a
// separate process exercising a localized slice of a big binary, so
// translation cost cannot be amortized within one run — but the
// persistent cache accumulates across tests and the suite speeds up
// over time.
//
//===----------------------------------------------------------------------===//

#include "persist/Session.h"
#include "support/FileSystem.h"
#include "support/Random.h"
#include "workloads/Codegen.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace pcc;

int main() {
  // A "compiler-sized" binary: 150 functions. Each regression test
  // exercises a random ~20% slice plus a common driver portion —
  // exactly the Gcc test-battery structure the paper describes.
  constexpr uint32_t NumFunctions = 150;
  constexpr uint32_t NumTests = 24;

  workloads::AppDef App;
  App.Name = "megacc";
  App.Path = "/opt/megacc/bin/megacc";
  for (uint32_t I = 0; I != NumFunctions; ++I) {
    workloads::RegionDef Fn;
    Fn.Name = "pass" + std::to_string(I);
    Fn.Blocks = 6;
    Fn.InstsPerBlock = 10;
    Fn.Seed = 9000 + I;
    App.Slots.push_back(workloads::FunctionSlot::local(Fn));
  }
  loader::ModuleRegistry Registry;
  auto Executable = workloads::buildExecutable(App);

  // Generate the tests: common driver (functions 0..19) + random slice.
  Rng Gen(2026);
  std::vector<std::vector<uint8_t>> Tests;
  for (uint32_t T = 0; T != NumTests; ++T) {
    std::vector<workloads::WorkItem> Items;
    for (uint32_t I = 0; I != 20; ++I)
      Items.push_back({I, 3});
    for (uint32_t I = 20; I != NumFunctions; ++I)
      if (Gen.nextBool(0.2))
        Items.push_back({I, 2 + static_cast<uint32_t>(
                                    Gen.nextBelow(6))});
    Tests.push_back(workloads::encodeWorkload(Items));
  }

  auto Dir = createUniqueTempDir("pcc-regression");
  if (!Dir)
    return 1;
  persist::CacheDatabase Db(*Dir);

  std::printf("running %u regression tests under instrumentation...\n\n",
              NumTests);
  std::printf("%6s %14s %14s %10s %9s\n", "test", "no-persist", "persist",
              "compiled", "saved");
  uint64_t TotalBase = 0;
  uint64_t TotalPersist = 0;
  for (uint32_t T = 0; T != NumTests; ++T) {
    dbi::MemRefTraceTool BaseTool;
    auto Base = workloads::runUnderEngine(Registry, Executable,
                                          Tests[T], &BaseTool);
    dbi::MemRefTraceTool PersistTool;
    auto Persist = workloads::runPersistent(Registry, Executable,
                                            Tests[T], Db,
                                            persist::PersistOptions(),
                                            &PersistTool);
    if (!Base || !Persist)
      return 1;
    TotalBase += Base->Run.Cycles;
    TotalPersist += Persist->Run.Cycles;
    if (T < 6 || T + 2 > NumTests)
      std::printf("%6u %11llu Kc %11llu Kc %10llu %8.1f%%\n", T,
                  (unsigned long long)(Base->Run.Cycles / 1000),
                  (unsigned long long)(Persist->Run.Cycles / 1000),
                  (unsigned long long)Persist->Stats.TracesCompiled,
                  100.0 * (1.0 -
                           static_cast<double>(Persist->Run.Cycles) /
                               static_cast<double>(Base->Run.Cycles)));
    else if (T == 6)
      std::printf("   ...\n");
  }

  std::printf("\nsuite total: %llu Kc without persistence, %llu Kc "
              "with (%.2fx speedup)\n",
              (unsigned long long)(TotalBase / 1000),
              (unsigned long long)(TotalPersist / 1000),
              static_cast<double>(TotalBase) /
                  static_cast<double>(TotalPersist));
  std::printf("later tests compile almost nothing: the cache has "
              "accumulated the whole suite's footprint.\n");
  (void)removeRecursively(*Dir);
  return 0;
}
