//===- examples/quickstart.cpp --------------------------------------------===//
//
// Quickstart: build a tiny guest program, run it natively, under the
// DBI engine, and twice under the engine with persistent code caching —
// showing translation work disappearing on the warm run.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "persist/Session.h"
#include "support/FileSystem.h"
#include "workloads/Codegen.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace pcc;

int main() {
  // 1. Describe a guest program: a dispatch table of generated
  //    functions ("regions"), driven by a work list read from the input
  //    region. Twelve stages are application code; six more come from a
  //    shared library.
  workloads::LibraryDef Lib;
  Lib.Name = "libdemo.so";
  Lib.Path = "/lib/libdemo.so";
  for (uint32_t I = 0; I != 6; ++I) {
    workloads::RegionDef LibFn;
    LibFn.Name = "transform" + std::to_string(I);
    LibFn.Blocks = 10;
    LibFn.InstsPerBlock = 10;
    LibFn.Seed = 7 + I;
    Lib.Regions.push_back(LibFn);
  }

  workloads::AppDef App;
  App.Name = "demo";
  App.Path = "/bin/demo";
  for (uint32_t I = 0; I != 12; ++I) {
    workloads::RegionDef Fn;
    Fn.Name = "stage" + std::to_string(I);
    Fn.Blocks = 10;
    Fn.InstsPerBlock = 10;
    Fn.Seed = 100 + I;
    App.Slots.push_back(workloads::FunctionSlot::local(Fn));
  }
  for (uint32_t I = 0; I != 6; ++I)
    App.Slots.push_back(workloads::FunctionSlot::import(
        "libdemo.so", "transform" + std::to_string(I)));

  // 2. Build the modules and register the library, like installing it.
  loader::ModuleRegistry Registry;
  Registry.add(workloads::buildLibrary(Lib));
  auto Executable = workloads::buildExecutable(App);

  // 3. An input: run every stage a modest number of times — short
  //    enough that translation dominates, like real short-lived tools.
  std::vector<workloads::WorkItem> Items;
  for (uint32_t Slot = 0; Slot != 18; ++Slot)
    Items.push_back({Slot, 40});
  auto Input = workloads::encodeWorkload(Items);

  // 4. Native reference run.
  auto Native = workloads::runNative(Registry, Executable, Input);
  if (!Native) {
    std::fprintf(stderr, "native run failed: %s\n",
                 Native.status().toString().c_str());
    return 1;
  }
  std::printf("native:            %8llu insts, %8llu cycles\n",
              (unsigned long long)Native->InstructionsExecuted,
              (unsigned long long)Native->Cycles);

  // 5. Under the engine (dynamic binary translation, no persistence).
  auto Translated =
      workloads::runUnderEngine(Registry, Executable, Input);
  if (!Translated)
    return 1;
  std::printf("engine (cold):     %8llu insts, %8llu cycles "
              "(%llu traces compiled)\n",
              (unsigned long long)Translated->Run.InstructionsExecuted,
              (unsigned long long)Translated->Run.Cycles,
              (unsigned long long)Translated->Stats.TracesCompiled);

  // 6. With persistent code caching: the first run generates the cache,
  //    the second reuses every translation.
  auto Dir = createUniqueTempDir("pcc-quickstart");
  if (!Dir)
    return 1;
  persist::CacheDatabase Db(*Dir);
  auto First = workloads::runPersistent(Registry, Executable, Input, Db);
  auto Second =
      workloads::runPersistent(Registry, Executable, Input, Db);
  if (!First || !Second)
    return 1;
  std::printf("persistent (gen):  %8llu insts, %8llu cycles "
              "(cache %s)\n",
              (unsigned long long)First->Run.InstructionsExecuted,
              (unsigned long long)First->Run.Cycles,
              First->Prime.CacheFound ? "found" : "generated");
  std::printf("persistent (warm): %8llu insts, %8llu cycles "
              "(%llu traces compiled, %u reused from disk)\n",
              (unsigned long long)Second->Run.InstructionsExecuted,
              (unsigned long long)Second->Run.Cycles,
              (unsigned long long)Second->Stats.TracesCompiled,
              Second->Prime.TracesInstalled);

  bool SameResults = Native->observablyEquals(Second->Run);
  std::printf("\nresults identical across all engines: %s\n",
              SameResults ? "yes" : "NO (bug!)");
  std::printf("warm run saves %.1f%% over the cold engine run\n",
              100.0 * (1.0 - static_cast<double>(Second->Run.Cycles) /
                                 static_cast<double>(
                                     Translated->Run.Cycles)));
  (void)removeRecursively(*Dir);
  return SameResults ? 0 : 1;
}
