; fib.s - compute fibonacci numbers and emit them as guest words.
; Build and run:
;   pcc-asm examples/asm/fib.s -o fib.mod
;   pccrun --mode persist --db /tmp/pcc-demo --stats fib.mod
.module fib "/bin/fib"
.entry main

.data
count: .word 12        ; how many numbers to emit

.text
main:
  ldi r4, @count
  ld r10, [r4+0]       ; n
  ldi r5, 0            ; fib(i)
  ldi r6, 1            ; fib(i+1)
  ldi r12, 0
loop:
  add r1, r5, r12
  sys 3                ; WriteWord(fib(i))
  add r7, r5, r6
  add r5, r6, r12
  add r6, r7, r12
  addi r10, r10, -1
  bne r10, r12, loop
  ldi r1, 0
  sys 1                ; exit(0)
