; libgreet.s - shared library exporting emit_hello.
.module libgreet.so "/lib/libgreet.so"
.library
.export emit_hello

emit_hello:
  ldi r1, 'h'
  sys 2
  ldi r1, 'e'
  sys 2
  ldi r1, 'l'
  sys 2
  ldi r1, 'l'
  sys 2
  ldi r1, 'o'
  sys 2
  ret
