; greeter.s - a library-using program: the greeting text lives in
; libgreet.so and is emitted character by character through a callback.
.module greeter "/bin/greeter"
.entry main

.data
.got emit_hello "libgreet.so" "emit_hello"

.text
main:
  ldi r4, @emit_hello
  ld r5, [r4+0]
  callr r5
  ldi r1, 0
  sys 1
