//===- examples/custom_tool.cpp -------------------------------------------===//
//
// Writing a client tool (the Pin-Tool analogue): a working-set profiler
// that tracks which 256-byte guest memory lines a program touches, and
// how instrumented runs interact with persistent caches — a cache
// created under one tool is never reused by another, and analysis
// results are identical with and without persistence.
//
//===----------------------------------------------------------------------===//

#include "dbi/Tool.h"
#include "persist/Session.h"
#include "support/FileSystem.h"
#include "workloads/Codegen.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <set>

using namespace pcc;

namespace {

/// A custom client: data working-set profiler. Requests memory-access
/// instrumentation and bins effective addresses into 256-byte lines.
class WorkingSetTool : public dbi::Tool {
public:
  std::string name() const override { return "workingset"; }
  uint32_t version() const override { return 2; }

  dbi::InstrumentationSpec spec() const override {
    dbi::InstrumentationSpec Spec;
    Spec.MemoryAccesses = true;
    return Spec;
  }

  void onMemoryAccess(uint32_t, uint32_t EffectiveAddr,
                      bool IsWrite) override {
    Lines.insert(EffectiveAddr >> 8);
    if (IsWrite)
      ++Writes;
    else
      ++Reads;
  }

  size_t workingSetLines() const { return Lines.size(); }
  uint64_t reads() const { return Reads; }
  uint64_t writes() const { return Writes; }

private:
  std::set<uint32_t> Lines;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
};

} // namespace

int main() {
  // A program with a handful of functions working on scratch memory.
  workloads::AppDef App;
  App.Name = "wsdemo";
  App.Path = "/bin/wsdemo";
  for (uint32_t I = 0; I != 6; ++I) {
    workloads::RegionDef Fn;
    Fn.Name = "kernel" + std::to_string(I);
    Fn.Blocks = 8;
    Fn.InstsPerBlock = 10;
    Fn.Seed = 500 + I;
    App.Slots.push_back(workloads::FunctionSlot::local(Fn));
  }
  loader::ModuleRegistry Registry;
  auto Executable = workloads::buildExecutable(App);
  auto Input = workloads::encodeWorkload(
      {{0, 50}, {1, 50}, {2, 50}, {3, 50}, {4, 50}, {5, 50}});

  auto Dir = createUniqueTempDir("pcc-custom-tool");
  if (!Dir)
    return 1;
  persist::CacheDatabase Db(*Dir);

  // Cold instrumented run: generates a persistent cache keyed by the
  // tool's identity (name + version + instrumentation spec).
  WorkingSetTool Cold;
  auto First = workloads::runPersistent(Registry, Executable, Input, Db,
                                        persist::PersistOptions(),
                                        &Cold);
  if (!First)
    return 1;
  std::printf("cold run:  %zu working-set lines, %llu reads, %llu "
              "writes; %llu traces compiled\n",
              Cold.workingSetLines(),
              (unsigned long long)Cold.reads(),
              (unsigned long long)Cold.writes(),
              (unsigned long long)First->Stats.TracesCompiled);

  // Warm instrumented run: all translations come from the cache, the
  // analysis results are bit-identical.
  WorkingSetTool Warm;
  auto Second = workloads::runPersistent(Registry, Executable, Input,
                                         Db, persist::PersistOptions(),
                                         &Warm);
  if (!Second)
    return 1;
  std::printf("warm run:  %zu working-set lines, %llu reads, %llu "
              "writes; %llu traces compiled, %u reused\n",
              Warm.workingSetLines(),
              (unsigned long long)Warm.reads(),
              (unsigned long long)Warm.writes(),
              (unsigned long long)Second->Stats.TracesCompiled,
              Second->Prime.TracesInstalled);

  // A *different* tool never reuses this cache: its key differs.
  dbi::BasicBlockCounterTool Other;
  auto Third = workloads::runPersistent(Registry, Executable, Input, Db,
                                        persist::PersistOptions(),
                                        &Other);
  if (!Third)
    return 1;
  std::printf("bbcount:   cache found for its key: %s (the working-set "
              "cache is keyed separately)\n",
              Third->Prime.CacheFound ? "yes" : "no");

  bool Consistent = Cold.workingSetLines() == Warm.workingSetLines() &&
                    Cold.reads() == Warm.reads() &&
                    Cold.writes() == Warm.writes() &&
                    Second->Stats.TracesCompiled == 0;
  std::printf("\ninstrumentation results identical cold vs warm: %s\n",
              Consistent ? "yes" : "NO (bug!)");
  (void)removeRecursively(*Dir);
  return Consistent ? 0 : 1;
}
