//===- tests/vm_test.cpp - CPU semantics and interpreter tests ------------===//

#include "vm/Exec.h"
#include "vm/Interpreter.h"
#include "vm/Machine.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::isa;
using namespace pcc::vm;

namespace {

/// Executes a single instruction against a fresh CPU with a small mapped
/// memory window at 0x1000 and returns the step result.
struct SingleStep {
  CpuState Cpu;
  loader::AddressSpace Space;
  SyscallEnv Env;

  SingleStep() {
    EXPECT_TRUE(Space.mapRegion(0x1000, 0x2000).ok());
    Cpu.setSp(0x3000);
  }

  ErrorOr<StepResult> step(const Instruction &Inst, uint32_t Pc = 0x1000) {
    return executeInstruction(Inst, Pc, Cpu, Space, Env);
  }
};

/// Builds an executable module around raw instructions and runs it
/// natively.
RunResult runProgram(const std::vector<Instruction> &Insts) {
  auto Mod = std::make_shared<binary::Module>(
      "prog", "/bin/prog", binary::ModuleKind::Executable);
  Mod->setInstructions(Insts);
  Mod->setBssSize(binary::PageSize);
  loader::ModuleRegistry Registry;
  auto M = Machine::create(Mod, Registry);
  EXPECT_TRUE(M.ok()) << (M.ok() ? "" : M.status().toString());
  return M->runNative();
}

} // namespace

TEST(Exec, AluRegisterOps) {
  SingleStep S;
  S.Cpu.Regs[1] = 10;
  S.Cpu.Regs[2] = 3;

  auto check = [&](Opcode Op, uint32_t Expected) {
    auto R = S.step(makeAlu(Op, 3, 1, 2));
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(S.Cpu.Regs[3], Expected) << opcodeName(Op);
    EXPECT_EQ(R->Kind, StepKind::Sequential);
    EXPECT_EQ(R->NextPc, 0x1008u);
  };
  check(Opcode::Add, 13);
  check(Opcode::Sub, 7);
  check(Opcode::Mul, 30);
  check(Opcode::Divu, 3);
  check(Opcode::And, 2);
  check(Opcode::Or, 11);
  check(Opcode::Xor, 9);
  check(Opcode::Shl, 80);
  check(Opcode::Shr, 1);
  check(Opcode::Sltu, 0);
  check(Opcode::Seq, 0);
}

TEST(Exec, DivideByZeroYieldsZero) {
  SingleStep S;
  S.Cpu.Regs[1] = 99;
  S.Cpu.Regs[2] = 0;
  ASSERT_TRUE(S.step(makeAlu(Opcode::Divu, 3, 1, 2)).ok());
  EXPECT_EQ(S.Cpu.Regs[3], 0u);
}

TEST(Exec, AluImmediateOps) {
  SingleStep S;
  S.Cpu.Regs[1] = 7;
  ASSERT_TRUE(S.step(makeAluImm(Opcode::Addi, 2, 1, 5)).ok());
  EXPECT_EQ(S.Cpu.Regs[2], 12u);
  ASSERT_TRUE(S.step(makeAluImm(Opcode::Muli, 2, 1, 3)).ok());
  EXPECT_EQ(S.Cpu.Regs[2], 21u);
  ASSERT_TRUE(S.step(makeAluImm(Opcode::Sltiu, 2, 1, 8)).ok());
  EXPECT_EQ(S.Cpu.Regs[2], 1u);
  // Wrap-around subtraction idiom used by generated loop code.
  ASSERT_TRUE(S.step(makeAluImm(Opcode::Addi, 1, 1, 0xffffffffu)).ok());
  EXPECT_EQ(S.Cpu.Regs[1], 6u);
}

TEST(Exec, ShiftAmountsMasked) {
  SingleStep S;
  S.Cpu.Regs[1] = 1;
  S.Cpu.Regs[2] = 33; // 33 & 31 == 1.
  ASSERT_TRUE(S.step(makeAlu(Opcode::Shl, 3, 1, 2)).ok());
  EXPECT_EQ(S.Cpu.Regs[3], 2u);
  ASSERT_TRUE(S.step(makeAluImm(Opcode::Shri, 3, 1, 32)).ok());
  EXPECT_EQ(S.Cpu.Regs[3], 1u); // Shift by 0.
}

TEST(Exec, LoadStoreRoundTrip) {
  SingleStep S;
  S.Cpu.Regs[1] = 0x1800;
  S.Cpu.Regs[2] = 0xcafebabe;
  ASSERT_TRUE(S.step(makeStore(1, 16, 2)).ok());
  ASSERT_TRUE(S.step(makeLoad(3, 1, 16)).ok());
  EXPECT_EQ(S.Cpu.Regs[3], 0xcafebabeU);
}

TEST(Exec, LoadFromUnmappedFaults) {
  SingleStep S;
  S.Cpu.Regs[1] = 0x90000000;
  auto R = S.step(makeLoad(3, 1, 0));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::GuestFault);
}

TEST(Exec, BranchTakenAndNotTaken) {
  SingleStep S;
  S.Cpu.Regs[1] = 5;
  S.Cpu.Regs[2] = 5;
  auto Taken = S.step(makeBranch(Opcode::Beq, 1, 2, 0x1400));
  ASSERT_TRUE(Taken.ok());
  EXPECT_EQ(Taken->Kind, StepKind::Control);
  EXPECT_EQ(Taken->NextPc, 0x1400u);

  auto NotTaken = S.step(makeBranch(Opcode::Bne, 1, 2, 0x1400));
  ASSERT_TRUE(NotTaken.ok());
  EXPECT_EQ(NotTaken->Kind, StepKind::Sequential);
  EXPECT_EQ(NotTaken->NextPc, 0x1008u);
}

TEST(Exec, UnsignedBranchComparisons) {
  SingleStep S;
  S.Cpu.Regs[1] = 0xffffffff; // Large unsigned, not -1.
  S.Cpu.Regs[2] = 1;
  auto R = S.step(makeBranch(Opcode::Bltu, 1, 2, 0x1400));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Kind, StepKind::Sequential) << "0xffffffff !< 1 unsigned";
  auto R2 = S.step(makeBranch(Opcode::Bgeu, 1, 2, 0x1400));
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2->Kind, StepKind::Control);
}

TEST(Exec, CallPushesReturnAddressAndRetPops) {
  SingleStep S;
  uint32_t Sp = S.Cpu.sp();
  auto CallStep = S.step(makeCall(0x1800), 0x1000);
  ASSERT_TRUE(CallStep.ok());
  EXPECT_EQ(CallStep->NextPc, 0x1800u);
  EXPECT_EQ(S.Cpu.sp(), Sp - 4);
  auto Pushed = S.Space.read32(S.Cpu.sp());
  ASSERT_TRUE(Pushed.ok());
  EXPECT_EQ(*Pushed, 0x1008u);

  auto RetStep = S.step(makeRet(), 0x1800);
  ASSERT_TRUE(RetStep.ok());
  EXPECT_EQ(RetStep->NextPc, 0x1008u);
  EXPECT_EQ(S.Cpu.sp(), Sp);
}

TEST(Exec, IndirectCallThroughRegister) {
  SingleStep S;
  S.Cpu.Regs[4] = 0x1900;
  auto R = S.step(makeCallr(4), 0x1000);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Kind, StepKind::Control);
  EXPECT_EQ(R->NextPc, 0x1900u);
}

TEST(Exec, JumpAndJr) {
  SingleStep S;
  auto J = S.step(makeJmp(0x1500));
  ASSERT_TRUE(J.ok());
  EXPECT_EQ(J->NextPc, 0x1500u);
  S.Cpu.Regs[6] = 0x1600;
  auto R = S.step(makeJr(6));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->NextPc, 0x1600u);
}

TEST(Exec, SyscallExit) {
  SingleStep S;
  S.Cpu.Regs[1] = 17;
  auto R = S.step(makeSys(static_cast<uint32_t>(SyscallNumber::Exit)));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Kind, StepKind::Halted);
  EXPECT_TRUE(S.Env.Exited);
  EXPECT_EQ(S.Env.ExitCode, 17u);
}

TEST(Exec, SyscallWriteCharAndWord) {
  SingleStep S;
  S.Cpu.Regs[1] = 'h';
  ASSERT_TRUE(
      S.step(makeSys(static_cast<uint32_t>(SyscallNumber::WriteChar)))
          .ok());
  S.Cpu.Regs[1] = 'i';
  ASSERT_TRUE(
      S.step(makeSys(static_cast<uint32_t>(SyscallNumber::WriteChar)))
          .ok());
  S.Cpu.Regs[1] = 99;
  auto R =
      S.step(makeSys(static_cast<uint32_t>(SyscallNumber::WriteWord)));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Kind, StepKind::Syscall);
  EXPECT_EQ(S.Env.Output, "hi");
  EXPECT_EQ(S.Env.WordLog, (std::vector<uint32_t>{99}));
  EXPECT_EQ(S.Env.SyscallCount, 3u);
}

TEST(Exec, UnknownSyscallTerminates) {
  SingleStep S;
  auto R = S.step(makeSys(999));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Kind, StepKind::Halted);
  EXPECT_EQ(S.Env.ExitCode, 127u);
}

TEST(Exec, HaltStops) {
  SingleStep S;
  auto R = S.step(makeHalt());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Kind, StepKind::Halted);
  EXPECT_FALSE(S.Env.Exited);
}

TEST(Interpreter, RunsStraightLineProgram) {
  RunResult R = runProgram({
      makeLdi(1, 6),
      makeAluImm(Opcode::Muli, 1, 1, 7),
      makeSys(static_cast<uint32_t>(SyscallNumber::WriteWord)),
      makeLdi(1, 3),
      makeSys(static_cast<uint32_t>(SyscallNumber::Exit)),
  });
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 3u);
  EXPECT_EQ(R.WordLog, (std::vector<uint32_t>{42}));
  EXPECT_EQ(R.InstructionsExecuted, 5u);
  EXPECT_EQ(R.SyscallCount, 2u);
}

TEST(Interpreter, LoopExecutesCorrectCount) {
  // r1 = 10; loop: r2 += 2; r1 -= 1; bne r1, r0, loop.
  constexpr uint32_t Base = 0x00400000; // Executable load base.
  RunResult R = runProgram({
      makeLdi(1, 10),
      makeLdi(2, 0),
      makeLdi(3, 0),
      /*loop @ idx 3:*/ makeAluImm(Opcode::Addi, 2, 2, 2),
      makeAluImm(Opcode::Addi, 1, 1, 0xffffffffu),
      makeBranch(Opcode::Bne, 1, 3, Base + 3 * 8),
      makeAlu(Opcode::Add, 1, 2, 3), // r1 = r2 = 20.
      makeSys(static_cast<uint32_t>(SyscallNumber::Exit)),
  });
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 20u);
  // 3 setup + 10 * 3 loop + 2 tail.
  EXPECT_EQ(R.InstructionsExecuted, 35u);
}

TEST(Interpreter, InstructionLimitEnforced) {
  constexpr uint32_t Base = 0x00400000;
  auto Mod = std::make_shared<binary::Module>(
      "spin", "/bin/spin", binary::ModuleKind::Executable);
  Mod->setInstructions({makeJmp(Base)}); // Infinite loop.
  loader::ModuleRegistry Registry;
  auto M = Machine::create(Mod, Registry);
  ASSERT_TRUE(M.ok());
  RunLimits Limits;
  Limits.MaxInstructions = 1000;
  RunResult R = M->runNative(Limits);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error.code(), ErrorCode::GuestFault);
  EXPECT_EQ(R.InstructionsExecuted, 1000u);
}

TEST(Interpreter, NativeCostModelCharges) {
  RunResult R = runProgram({
      makeLdi(1, 0),
      makeSys(static_cast<uint32_t>(SyscallNumber::Exit)),
  });
  ASSERT_TRUE(R.ok());
  NativeCostModel Costs;
  EXPECT_EQ(R.Cycles, 2 * Costs.CyclesPerInstruction +
                          1 * Costs.CyclesPerSyscall);
}

TEST(Interpreter, FaultOnJumpToUnmapped) {
  RunResult R = runProgram({makeJmp(0x09000000)});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error.code(), ErrorCode::GuestFault);
}

TEST(Machine, InputRegionVisible) {
  tests::TinyWorkload W = tests::makeTinyWorkload(2, 0);
  auto Input = W.allSlotsInput(1);
  auto M = workloads::makeMachine(W.Registry, W.App, Input);
  ASSERT_TRUE(M.ok());
  auto N = M->space().read32(Machine::InputRegionBase);
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(*N, 2u); // Work-item count.
}
