//===- tests/persist_test.cpp - persistent code caching tests -------------===//
//
// Covers the paper's core mechanisms: keys (Section 3.2.1), cache
// generation (3.2.2), reuse/validation/invalidation (3.2.3), cross-input
// reuse (4.3), accumulation (4.4), inter-application persistence (4.5),
// and the position-independent-translation extension.
//
//===----------------------------------------------------------------------===//

#include "persist/CacheDatabase.h"
#include "persist/CacheFile.h"
#include "persist/CacheView.h"
#include "persist/Key.h"
#include "persist/Session.h"

#include "TestUtils.h"

#include "support/Hashing.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::persist;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;
using workloads::WorkItem;

namespace {

/// Run (app, input) with persistence against Db; asserts success.
PersistentRunResult mustRunPersistent(
    const TinyWorkload &W, const std::vector<uint8_t> &Input,
    const CacheDatabase &Db,
    const PersistOptions &Opts = PersistOptions(),
    dbi::Tool *Tool = nullptr,
    loader::BasePolicy Policy = loader::BasePolicy::Fixed,
    uint64_t AslrSeed = 0) {
  auto R = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts,
                                    Tool, dbi::EngineOptions(), Policy,
                                    AslrSeed);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.status().toString());
  return R.take();
}

} // namespace

TEST(Key, ComputedFromMapping) {
  TinyWorkload W = makeTinyWorkload(2, 1);
  auto M = workloads::makeMachine(W.Registry, W.App, W.allSlotsInput());
  ASSERT_TRUE(M.ok());
  ModuleKey Key = ModuleKey::compute(M->image().Modules[0]);
  EXPECT_EQ(Key.Path, "/bin/tinyapp");
  EXPECT_EQ(Key.Base, loader::Loader::ExecutableBase);
  EXPECT_NE(Key.FullHash, 0u);
  EXPECT_NE(Key.FullHash, Key.PicHash);
  EXPECT_TRUE(Key.matches(Key));
}

TEST(Key, TimestampChangesKey) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  auto M1 = workloads::makeMachine(W.Registry, W.App, W.allSlotsInput());
  ASSERT_TRUE(M1.ok());
  ModuleKey Before = ModuleKey::compute(M1->image().Modules[0]);

  // Rebuild (touch) the binary, as a static compiler would.
  auto Touched = std::make_shared<binary::Module>(*W.App);
  Touched->touch();
  loader::ModuleRegistry Registry;
  auto M2 = workloads::makeMachine(Registry, Touched, W.allSlotsInput());
  ASSERT_TRUE(M2.ok());
  ModuleKey After = ModuleKey::compute(M2->image().Modules[0]);
  EXPECT_FALSE(Before.matches(After));
  EXPECT_FALSE(Before.matchesIgnoringBase(After));
}

TEST(Key, BaseAddressOnlyAffectsFullHash) {
  TinyWorkload W = makeTinyWorkload(1, 1);
  auto MA = workloads::makeMachine(W.Registry, W.App, W.allSlotsInput(),
                                   loader::BasePolicy::Randomized, 11);
  auto MB = workloads::makeMachine(W.Registry, W.App, W.allSlotsInput(),
                                   loader::BasePolicy::Randomized, 22);
  ASSERT_TRUE(MA.ok() && MB.ok());
  const auto *LibA = MA->image().findByName("libtest.so");
  const auto *LibB = MB->image().findByName("libtest.so");
  ASSERT_TRUE(LibA && LibB);
  ASSERT_NE(LibA->Base, LibB->Base);
  ModuleKey KA = ModuleKey::compute(*LibA);
  ModuleKey KB = ModuleKey::compute(*LibB);
  EXPECT_FALSE(KA.matches(KB));
  EXPECT_TRUE(KA.matchesIgnoringBase(KB));
}

TEST(Key, SerializationRoundTrip) {
  ModuleKey Key;
  Key.Path = "/lib/libx.so";
  Key.Base = 0x10000000;
  Key.Size = 0x4000;
  Key.HeaderHash = 123;
  Key.ModTime = 456;
  Key.FullHash = 789;
  Key.PicHash = 1011;
  ByteWriter Writer;
  Key.serialize(Writer);
  ByteReader Reader(Writer.bytes());
  ModuleKey Back = ModuleKey::deserialize(Reader);
  EXPECT_EQ(Back, Key);
}

TEST(CacheFileFormat, SerializeDeserializeRoundTrip) {
  CacheFile File;
  File.EngineHash = 1;
  File.ToolHash = 2;
  File.SpecBits = 3;
  File.PositionIndependent = true;
  File.Generation = 7;
  ModuleKey Key;
  Key.Path = "/bin/x";
  Key.FullHash = 42;
  File.Modules.push_back(Key);
  TraceRecord Trace;
  Trace.GuestStart = 0x400000;
  Trace.ModuleIndex = 0;
  Trace.GuestInstCount = 2;
  Trace.Code = {1, 2, 3, 4};
  Trace.Exits.push_back(ExitRecord{0, 1, 0x400010, 0x400010});
  Trace.setRelocBit(1);
  File.Traces.push_back(Trace);

  auto Bytes = File.serialize();
  auto Back = CacheFile::deserialize(Bytes);
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back->EngineHash, 1u);
  EXPECT_EQ(Back->Generation, 7u);
  EXPECT_TRUE(Back->PositionIndependent);
  ASSERT_EQ(Back->Traces.size(), 1u);
  EXPECT_EQ(Back->Traces[0].Code, Trace.Code);
  EXPECT_TRUE(Back->Traces[0].relocBit(1));
  EXPECT_FALSE(Back->Traces[0].relocBit(0));
  ASSERT_EQ(Back->Traces[0].Exits.size(), 1u);
  EXPECT_EQ(Back->Traces[0].Exits[0].LinkedStart, 0x400010u);
}

TEST(CacheFileFormat, CorruptionDetected) {
  CacheFile File;
  File.EngineHash = 5;
  auto Bytes = File.serialize();
  Bytes[Bytes.size() / 2] ^= 1;
  auto Back = CacheFile::deserialize(Bytes);
  ASSERT_FALSE(Back.ok());
  EXPECT_EQ(Back.status().code(), ErrorCode::InvalidFormat);
}

TEST(CacheFileFormat, TruncationDetected) {
  CacheFile File;
  auto Bytes = File.serialize();
  Bytes.resize(Bytes.size() - 5);
  EXPECT_FALSE(CacheFile::deserialize(Bytes).ok());
}

TEST(CacheFileFormat, SizeAccounting) {
  CacheFile File;
  TraceRecord Trace;
  Trace.GuestInstCount = 4;
  Trace.Code.assign(100, 0);
  Trace.Exits.resize(2);
  File.Traces.push_back(Trace);
  EXPECT_EQ(File.codeBytes(), 100u);
  EXPECT_EQ(File.dataBytes(), traceDataBytes(2, 4));
  // Data structures outweigh code for typical short traces (Figure 9).
  EXPECT_GT(File.dataBytes(), File.codeBytes());
}

TEST(Database, StoreLoadRemove) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  CacheFile File;
  File.EngineHash = 99;
  ASSERT_TRUE(Db.store(7, File).ok());
  EXPECT_TRUE(Db.exists(7));
  auto Back = Db.load(7);
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back->EngineHash, 99u);
  EXPECT_TRUE(Db.remove(7).ok());
  EXPECT_FALSE(Db.exists(7));
  EXPECT_EQ(Db.load(7).status().code(), ErrorCode::NotFound);
}

TEST(Database, FindCompatibleFiltersByEngineAndTool) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  CacheFile A;
  A.EngineHash = 1;
  A.ToolHash = 2;
  CacheFile B;
  B.EngineHash = 1;
  B.ToolHash = 3;
  ASSERT_TRUE(Db.store(100, A).ok());
  ASSERT_TRUE(Db.store(200, B).ok());
  auto Matches = Db.findCompatible(1, 2);
  ASSERT_TRUE(Matches.ok());
  ASSERT_EQ(Matches->size(), 1u);
  EXPECT_EQ((*Matches)[0], Db.pathFor(100));
}

TEST(Database, ClearRemovesEverything) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, CacheFile()).ok());
  ASSERT_TRUE(Db.store(2, CacheFile()).ok());
  ASSERT_TRUE(Db.clear().ok());
  EXPECT_FALSE(Db.exists(1));
  EXPECT_FALSE(Db.exists(2));
}

//===----------------------------------------------------------------------===//
// Format migration: legacy (v1) cache files still deserialize, prime
// identically to their v2 rewrite, and are upgraded to v2 by the next
// finalize().
//===----------------------------------------------------------------------===//

TEST(FormatMigration, LegacyAndV2RoundTripAgree) {
  CacheFile File;
  File.EngineHash = 11;
  File.ToolHash = 22;
  File.SpecBits = 3;
  File.PositionIndependent = true;
  File.Generation = 4;
  ModuleKey Key;
  Key.Path = "/bin/y";
  Key.Base = 0x400000;
  Key.Size = 0x10000;
  File.Modules.push_back(Key);
  TraceRecord Trace;
  Trace.GuestStart = 0x400100;
  Trace.GuestInstCount = 3;
  Trace.Code.assign(dbi::TracePrologueBytes + 3 * isa::InstructionSize,
                    0x5c);
  Trace.Exits.push_back(ExitRecord{1, 2, 0x400200, 0});
  Trace.setRelocBit(0);
  Trace.setRelocBit(2);
  File.Traces.push_back(Trace);

  auto FromLegacy = CacheFile::deserialize(File.serializeLegacy());
  ASSERT_TRUE(FromLegacy.ok()) << FromLegacy.status().toString();
  auto FromV2 = CacheFile::deserialize(File.serialize());
  ASSERT_TRUE(FromV2.ok()) << FromV2.status().toString();
  EXPECT_EQ(FromLegacy->SourceFormat, 1u);
  EXPECT_EQ(FromV2->SourceFormat, 2u);
  EXPECT_TRUE(FromLegacy->validate().ok());
  EXPECT_TRUE(FromV2->validate().ok());

  // Same logical content regardless of the on-disk format.
  for (const CacheFile *Back : {&*FromLegacy, &*FromV2}) {
    EXPECT_EQ(Back->EngineHash, 11u);
    EXPECT_EQ(Back->Generation, 4u);
    ASSERT_EQ(Back->Modules.size(), 1u);
    EXPECT_EQ(Back->Modules[0].Path, "/bin/y");
    ASSERT_EQ(Back->Traces.size(), 1u);
    EXPECT_EQ(Back->Traces[0].Code, Trace.Code);
    EXPECT_EQ(Back->Traces[0].Exits.size(), 1u);
    EXPECT_TRUE(Back->Traces[0].relocBit(2));
    EXPECT_FALSE(Back->Traces[0].relocBit(1));
  }
}

TEST(FormatMigration, V1PrimesIdenticallyToV2) {
  TinyWorkload W = makeTinyWorkload(6, 3);
  auto Input = W.allSlotsInput(4);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Cold = mustRunPersistent(W, Input, Db);
  EXPECT_FALSE(Cold.Prime.CacheFound);

  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  ASSERT_EQ(Files->size(), 1u);
  std::string Path = Dir.path() + "/" + (*Files)[0];
  ASSERT_TRUE(isV2CacheFile(Path));

  PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  auto WarmV2 = mustRunPersistent(W, Input, Db, ReadOnly);

  // Downgrade the same cache to the legacy format in place.
  auto AsFile = Db.loadPath(Path);
  ASSERT_TRUE(AsFile.ok()) << AsFile.status().toString();
  ASSERT_TRUE(writeFileAtomic(Path, AsFile->serializeLegacy()).ok());
  ASSERT_FALSE(isV2CacheFile(Path));
  auto WarmV1 = mustRunPersistent(W, Input, Db, ReadOnly);

  // Both formats prime the exact same trace set and restore the same
  // links; the runs are observably identical.
  EXPECT_TRUE(WarmV1.Prime.CacheFound);
  EXPECT_TRUE(WarmV2.Prime.CacheFound);
  EXPECT_EQ(WarmV1.Prime.TracesInstalled, WarmV2.Prime.TracesInstalled);
  EXPECT_EQ(WarmV1.Prime.TracesSkipped, WarmV2.Prime.TracesSkipped);
  EXPECT_EQ(WarmV1.Prime.ModulesValidated, WarmV2.Prime.ModulesValidated);
  EXPECT_EQ(WarmV1.Prime.ModulesInvalidated,
            WarmV2.Prime.ModulesInvalidated);
  EXPECT_EQ(WarmV1.Prime.LinksRestored, WarmV2.Prime.LinksRestored);
  EXPECT_EQ(WarmV1.Stats.TracesCompiled, WarmV2.Stats.TracesCompiled);
  EXPECT_TRUE(WarmV1.Run.observablyEquals(WarmV2.Run));
}

TEST(FormatMigration, V1RewrittenAsV2AtFinalize) {
  TinyWorkload W = makeTinyWorkload(4, 2);
  auto Input = W.allSlotsInput(3);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  (void)mustRunPersistent(W, Input, Db);

  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  ASSERT_EQ(Files->size(), 1u);
  std::string Path = Dir.path() + "/" + (*Files)[0];
  auto AsFile = Db.loadPath(Path);
  ASSERT_TRUE(AsFile.ok());
  ASSERT_TRUE(writeFileAtomic(Path, AsFile->serializeLegacy()).ok());
  ASSERT_FALSE(isV2CacheFile(Path));

  // A default (write-back) warm run consumes the v1 file and rewrites
  // the slot in the indexed format, with the generation advanced.
  auto Warm = mustRunPersistent(W, Input, Db);
  EXPECT_TRUE(Warm.Prime.CacheFound);
  EXPECT_TRUE(isV2CacheFile(Path));
  auto Upgraded = Db.loadPath(Path);
  ASSERT_TRUE(Upgraded.ok()) << Upgraded.status().toString();
  EXPECT_EQ(Upgraded->SourceFormat, 2u);
  EXPECT_EQ(Upgraded->Generation, AsFile->Generation + 1);
  EXPECT_TRUE(Upgraded->validate().ok());
}

TEST(SameInput, FirstRunGeneratesCache) {
  TinyWorkload W = makeTinyWorkload(4, 2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(5);
  auto R = mustRunPersistent(W, Input, Db);
  EXPECT_FALSE(R.Prime.CacheFound);
  EXPECT_GT(R.Stats.TracesCompiled, 0u);

  PersistentSession ProbeSession(Db);
  ASSERT_TRUE(Db.exists(R.Stats.TracesCompiled ? 0 : 0) ||
              true); // Cache presence checked via database scan below.
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  EXPECT_EQ(Files->size(), 1u);
}

TEST(SameInput, SecondRunEliminatesTranslation) {
  // Large enough that translation savings dwarf the fixed cache-open
  // cost (tiny programs can break even, as the paper notes persistence
  // "does not degrade performance when it is ineffective").
  TinyWorkload W = makeTinyWorkload(30, 10);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(5);

  auto Cold = mustRunPersistent(W, Input, Db);
  auto Warm = mustRunPersistent(W, Input, Db);

  EXPECT_TRUE(Warm.Prime.CacheFound);
  EXPECT_GT(Warm.Prime.TracesInstalled, 0u);
  EXPECT_EQ(Warm.Prime.ModulesInvalidated, 0u);
  // All code reused: zero translation work (same-input persistence).
  EXPECT_EQ(Warm.Stats.TracesCompiled, 0u);
  EXPECT_EQ(Warm.Stats.CompileCycles, 0u);
  // And the run is observably identical and faster.
  EXPECT_TRUE(Cold.Run.observablyEquals(Warm.Run));
  EXPECT_LT(Warm.Run.Cycles, Cold.Run.Cycles);
}

TEST(SameInput, PersistedLinksRestored) {
  TinyWorkload W = makeTinyWorkload(4, 2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(5);
  mustRunPersistent(W, Input, Db);
  auto Warm = mustRunPersistent(W, Input, Db);
  EXPECT_GT(Warm.Prime.LinksRestored, 0u);
  // No dispatcher work for already-linked paths ⇒ fewer new links.
  EXPECT_EQ(Warm.Stats.LinksCreated, 0u);
}

TEST(SameInput, ResultsIdenticalToNative) {
  TinyWorkload W = makeTinyWorkload(5, 3);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(4);
  auto Native = workloads::runNative(W.Registry, W.App, Input);
  ASSERT_TRUE(Native.ok());
  mustRunPersistent(W, Input, Db);
  auto Warm = mustRunPersistent(W, Input, Db);
  EXPECT_TRUE(Native->observablyEquals(Warm.Run));
}

TEST(Validation, EngineVersionGuardsCache) {
  TinyWorkload W = makeTinyWorkload(2, 1);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  auto Cold = mustRunPersistent(W, Input, Db);
  (void)Cold;

  // Corrupt the stored engine hash to simulate a version change.
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  ASSERT_EQ(Files->size(), 1u);
  std::string Path = Dir.path() + "/" + (*Files)[0];
  auto File = CacheFile::deserialize(*readFile(Path));
  ASSERT_TRUE(File.ok());
  File->EngineHash ^= 1;
  ASSERT_TRUE(writeFileAtomic(Path, File->serialize()).ok());

  auto Warm = mustRunPersistent(W, Input, Db);
  EXPECT_FALSE(Warm.Prime.CacheFound);
  EXPECT_EQ(Warm.Prime.RejectReason, "engine version mismatch");
  EXPECT_GT(Warm.Stats.TracesCompiled, 0u);
}

TEST(Validation, ToolMismatchRejectsCache) {
  TinyWorkload W = makeTinyWorkload(2, 1);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);

  dbi::BasicBlockCounterTool Bb;
  auto R1 = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                     PersistOptions(), &Bb);
  ASSERT_TRUE(R1.ok());

  // Different tool ⇒ different lookup key ⇒ fresh cache, not reuse.
  dbi::MemRefTraceTool Mem;
  auto R2 = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                     PersistOptions(), &Mem);
  ASSERT_TRUE(R2.ok());
  EXPECT_FALSE(R2->Prime.CacheFound);
  EXPECT_GT(R2->Stats.TracesCompiled, 0u);

  // Same tool again ⇒ reuse.
  dbi::BasicBlockCounterTool Bb2;
  auto R3 = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                     PersistOptions(), &Bb2);
  ASSERT_TRUE(R3.ok());
  EXPECT_TRUE(R3->Prime.CacheFound);
  EXPECT_EQ(R3->Stats.TracesCompiled, 0u);
}

TEST(Validation, ModifiedBinaryInvalidatesItsTraces) {
  TinyWorkload W = makeTinyWorkload(3, 2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  mustRunPersistent(W, Input, Db);

  // Rebuild the library: same name/path, newer timestamp.
  auto NewLib = std::make_shared<binary::Module>(
      *W.Registry.find("libtest.so"));
  NewLib->touch();
  W.Registry.add(NewLib);

  auto Warm = mustRunPersistent(W, Input, Db);
  EXPECT_TRUE(Warm.Prime.CacheFound);
  EXPECT_EQ(Warm.Prime.ModulesInvalidated, 1u);
  // App traces still reused; library traces retranslated.
  EXPECT_GT(Warm.Prime.TracesInstalled, 0u);
  EXPECT_GT(Warm.Prime.TracesSkipped, 0u);
  EXPECT_GT(Warm.Stats.TracesCompiled, 0u);
  EXPECT_TRUE(Warm.Run.ok());
}

TEST(Validation, RelocatedLibraryFallsBackToRetranslation) {
  TinyWorkload W = makeTinyWorkload(2, 3);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);

  // Create the cache under one randomized layout, reuse under another.
  auto Cold = mustRunPersistent(W, Input, Db, PersistOptions(), nullptr,
                                loader::BasePolicy::Randomized, 1);
  auto Warm = mustRunPersistent(W, Input, Db, PersistOptions(), nullptr,
                                loader::BasePolicy::Randomized, 2);
  EXPECT_TRUE(Warm.Prime.CacheFound);
  EXPECT_GE(Warm.Prime.ModulesInvalidated, 1u);
  EXPECT_GT(Warm.Stats.TracesCompiled, 0u);
  EXPECT_TRUE(Cold.Run.observablyEquals(Warm.Run));
}

TEST(Validation, CorruptCacheFileIgnoredSafely) {
  TinyWorkload W = makeTinyWorkload(2, 1);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  mustRunPersistent(W, Input, Db);

  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  std::string Path = Dir.path() + "/" + (*Files)[0];
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  (*Bytes)[Bytes->size() / 3] ^= 0x40;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());

  auto Warm = mustRunPersistent(W, Input, Db);
  EXPECT_FALSE(Warm.Prime.CacheFound);
  EXPECT_FALSE(Warm.Prime.RejectReason.empty());
  EXPECT_TRUE(Warm.Run.ok());
}

TEST(CrossInput, CommonCodeReused) {
  TinyWorkload W = makeTinyWorkload(6, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  // Input A exercises slots 0..3; input B exercises 2..5.
  auto InputA = W.input({{0, 3}, {1, 3}, {2, 3}, {3, 3}});
  auto InputB = W.input({{2, 3}, {3, 3}, {4, 3}, {5, 3}});

  mustRunPersistent(W, InputA, Db);
  auto B = mustRunPersistent(W, InputB, Db);
  EXPECT_TRUE(B.Prime.CacheFound);
  EXPECT_GT(B.Prime.TracesInstalled, 0u);
  // Slots 4 and 5 are new: some translation remains.
  EXPECT_GT(B.Stats.TracesCompiled, 0u);
  // But common code came from the cache.
  EXPECT_GT(B.Stats.TracesReused, 0u);

  auto BFresh = workloads::runUnderEngine(W.Registry, W.App, InputB);
  ASSERT_TRUE(BFresh.ok());
  EXPECT_LT(B.Stats.TracesCompiled, BFresh->Stats.TracesCompiled);
  EXPECT_TRUE(B.Run.observablyEquals(BFresh->Run));
}

TEST(Accumulation, CacheGrowsAcrossInputs) {
  TinyWorkload W = makeTinyWorkload(6, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto InputA = W.input({{0, 3}, {1, 3}});
  auto InputB = W.input({{2, 3}, {3, 3}});
  auto InputAll =
      W.input({{0, 3}, {1, 3}, {2, 3}, {3, 3}});

  mustRunPersistent(W, InputA, Db);
  auto B = mustRunPersistent(W, InputB, Db);
  EXPECT_GT(B.Stats.TracesCompiled, 0u); // B's code was new.

  // After accumulating both, a run touching all code translates none.
  auto All = mustRunPersistent(W, InputAll, Db);
  EXPECT_TRUE(All.Prime.CacheFound);
  EXPECT_EQ(All.Stats.TracesCompiled, 0u)
      << "accumulated cache must cover A ∪ B";
}

TEST(Accumulation, GenerationCounterAdvances) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  mustRunPersistent(W, Input, Db);
  mustRunPersistent(W, Input, Db);
  mustRunPersistent(W, Input, Db);
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  auto File = CacheFile::deserialize(
      *readFile(Dir.path() + "/" + (*Files)[0]));
  ASSERT_TRUE(File.ok());
  EXPECT_EQ(File->Generation, 3u);
}

TEST(Accumulation, IdempotentForSameInput) {
  TinyWorkload W = makeTinyWorkload(3, 1);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  mustRunPersistent(W, Input, Db);
  auto Files = listDirectory(Dir.path());
  auto Before = CacheFile::deserialize(
      *readFile(Dir.path() + "/" + (*Files)[0]));
  ASSERT_TRUE(Before.ok());

  mustRunPersistent(W, Input, Db);
  auto After = CacheFile::deserialize(
      *readFile(Dir.path() + "/" + (*Files)[0]));
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(Before->Traces.size(), After->Traces.size());
  EXPECT_EQ(Before->codeBytes(), After->codeBytes());
}

TEST(Accumulation, WriteBackOffLeavesDatabaseUntouched) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  PersistOptions NoWrite;
  NoWrite.WriteBack = false;
  mustRunPersistent(W, W.allSlotsInput(2), Db, NoWrite);
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  EXPECT_TRUE(Files->empty());
}

TEST(CrossInput, ExplicitDonorCache) {
  TinyWorkload W = makeTinyWorkload(4, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto InputA = W.input({{0, 2}, {1, 2}});

  PersistOptions StoreA;
  StoreA.StoreAsPath = Dir.path() + "/donorA.pcc";
  mustRunPersistent(W, InputA, Db, StoreA);

  PersistOptions UseA;
  UseA.ExplicitCachePath = Dir.path() + "/donorA.pcc";
  UseA.WriteBack = false;
  auto R = mustRunPersistent(W, InputA, Db, UseA);
  EXPECT_TRUE(R.Prime.CacheFound);
  EXPECT_EQ(R.Stats.TracesCompiled, 0u);
}

TEST(InterApp, LibraryTranslationsSharedAcrossPrograms) {
  // Two different apps linking the same library, loaded at the same
  // base (library is the first dependency of both).
  loader::ModuleRegistry Registry;
  workloads::LibraryDef Lib;
  Lib.Name = "libshared.so";
  Lib.Path = "/lib/libshared.so";
  for (uint32_t I = 0; I != 5; ++I) {
    workloads::RegionDef Region;
    Region.Name = "fn" + std::to_string(I);
    Region.Blocks = 4;
    Region.InstsPerBlock = 8;
    Region.Seed = 300 + I;
    Lib.Regions.push_back(std::move(Region));
  }
  Registry.add(workloads::buildLibrary(Lib));

  auto makeApp = [&](const std::string &Name) {
    workloads::AppDef Def;
    Def.Name = Name;
    Def.Path = "/bin/" + Name;
    for (uint32_t I = 0; I != 5; ++I)
      Def.Slots.push_back(workloads::FunctionSlot::import(
          "libshared.so", "fn" + std::to_string(I)));
    workloads::RegionDef Local;
    Local.Name = "app";
    Local.Blocks = 4;
    Local.InstsPerBlock = 8;
    Local.Seed = fnv1a64(Name);
    Def.Slots.push_back(workloads::FunctionSlot::local(std::move(Local)));
    return workloads::buildExecutable(Def);
  };
  auto AppA = makeApp("alpha");
  auto AppB = makeApp("beta");
  auto Input = workloads::encodeWorkload({{0, 2},
                                          {1, 2},
                                          {2, 2},
                                          {3, 2},
                                          {4, 2},
                                          {5, 2}});

  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto RA = workloads::runPersistent(Registry, AppA, Input, Db);
  ASSERT_TRUE(RA.ok());

  // Without inter-application mode, B finds nothing.
  auto RBNo = workloads::runPersistent(Registry, AppB, Input, Db);
  ASSERT_TRUE(RBNo.ok());
  EXPECT_FALSE(RBNo->Prime.CacheFound);

  // With it, B reuses A's library translations; A's application traces
  // fail validation (different binary) and are retranslated.
  ASSERT_TRUE(Db.clear().ok());
  auto RA2 = workloads::runPersistent(Registry, AppA, Input, Db);
  ASSERT_TRUE(RA2.ok());
  PersistOptions Inter;
  Inter.InterApplication = true;
  auto RB = workloads::runPersistent(Registry, AppB, Input, Db, Inter);
  ASSERT_TRUE(RB.ok());
  EXPECT_TRUE(RB->Prime.CacheFound);
  EXPECT_GT(RB->Prime.TracesInstalled, 0u);   // Library traces.
  EXPECT_GT(RB->Prime.TracesSkipped, 0u);     // Donor app traces.
  EXPECT_GT(RB->Stats.TracesCompiled, 0u);    // B's own code.
  // And correctness holds.
  auto Native = workloads::runNative(Registry, AppB, Input);
  ASSERT_TRUE(Native.ok());
  EXPECT_TRUE(Native->observablyEquals(RB->Run));
}

TEST(Pic, RelocatedLibraryReusedWithPositionIndependentTranslations) {
  TinyWorkload W = makeTinyWorkload(2, 3);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(3);

  PersistOptions Pic;
  Pic.PositionIndependent = true;
  auto Cold = mustRunPersistent(W, Input, Db, Pic, nullptr,
                                loader::BasePolicy::Randomized, 1);
  auto Warm = mustRunPersistent(W, Input, Db, Pic, nullptr,
                                loader::BasePolicy::Randomized, 2);
  EXPECT_TRUE(Warm.Prime.CacheFound);
  EXPECT_EQ(Warm.Prime.ModulesInvalidated, 0u);
  EXPECT_EQ(Warm.Stats.TracesCompiled, 0u)
      << "PIC translations must survive relocation";
  EXPECT_TRUE(Cold.Run.observablyEquals(Warm.Run));
}

TEST(Pic, ModeMismatchRejectsCache) {
  TinyWorkload W = makeTinyWorkload(2, 1);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  PersistOptions Pic;
  Pic.PositionIndependent = true;
  mustRunPersistent(W, Input, Db, Pic);
  auto Warm = mustRunPersistent(W, Input, Db); // Non-PIC session.
  EXPECT_FALSE(Warm.Prime.CacheFound);
  EXPECT_EQ(Warm.Prime.RejectReason,
            "translation addressing mode mismatch");
}

TEST(Persistence, InstrumentedRunsReuseInstrumentedCache) {
  TinyWorkload W = makeTinyWorkload(3, 2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(4);

  dbi::BasicBlockCounterTool Cold;
  auto R1 = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                     PersistOptions(), &Cold);
  ASSERT_TRUE(R1.ok());
  dbi::BasicBlockCounterTool Warm;
  auto R2 = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                     PersistOptions(), &Warm);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2->Stats.TracesCompiled, 0u);
  // Analysis results identical with and without persistence.
  EXPECT_EQ(Cold.totalBlocks(), Warm.totalBlocks());
  EXPECT_EQ(Cold.totalInstructions(), Warm.totalInstructions());
  EXPECT_EQ(Cold.counts(), Warm.counts());
}

TEST(Persistence, MultiProcessSharedDatabase) {
  // The Oracle model: several processes of one binary, different
  // inputs, one database — each process accumulates into the cache.
  TinyWorkload W = makeTinyWorkload(8, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  std::vector<std::vector<uint8_t>> Phases = {
      W.input({{0, 2}, {1, 2}}),
      W.input({{1, 2}, {2, 2}, {3, 2}}),
      W.input({{3, 2}, {4, 2}, {5, 2}}),
      W.input({{5, 2}, {6, 2}, {7, 2}}),
  };
  uint64_t TotalCompiled = 0;
  for (const auto &Phase : Phases) {
    auto R = mustRunPersistent(W, Phase, Db);
    TotalCompiled += R.Stats.TracesCompiled;
  }
  // Second sweep: everything is cached.
  for (const auto &Phase : Phases) {
    auto R = mustRunPersistent(W, Phase, Db);
    EXPECT_EQ(R.Stats.TracesCompiled, 0u);
  }
  EXPECT_GT(TotalCompiled, 0u);
}
