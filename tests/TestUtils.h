//===- tests/TestUtils.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//

#ifndef PCC_TESTS_TESTUTILS_H
#define PCC_TESTS_TESTUTILS_H

#include "support/FileSystem.h"
#include "workloads/Codegen.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace pcc {
namespace tests {

/// RAII temporary directory for cache databases.
class TempDir {
public:
  TempDir() {
    auto Dir = createUniqueTempDir("pcc-test");
    EXPECT_TRUE(Dir.ok()) << (Dir.ok() ? "" : Dir.status().toString());
    if (Dir.ok())
      Path = Dir.take();
  }
  ~TempDir() {
    if (!Path.empty())
      (void)removeRecursively(Path);
  }
  TempDir(const TempDir &) = delete;
  TempDir &operator=(const TempDir &) = delete;

  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// A small self-contained app: \p NumRegions local regions dispatched by
/// a work list, optionally importing \p LibRegions regions from a
/// library "libtest.so" added to \p Registry.
struct TinyWorkload {
  std::shared_ptr<binary::Module> App;
  loader::ModuleRegistry Registry;
  uint32_t NumLocal = 0;
  uint32_t NumImports = 0;

  /// Input running every slot once with \p Iters iterations.
  std::vector<uint8_t> allSlotsInput(uint32_t Iters = 1) const {
    std::vector<workloads::WorkItem> Items;
    for (uint32_t Slot = 0; Slot != NumLocal + NumImports; ++Slot)
      Items.push_back(workloads::WorkItem{Slot, Iters});
    return workloads::encodeWorkload(Items);
  }

  /// Input running the given (slot, iters) pairs.
  std::vector<uint8_t>
  input(const std::vector<workloads::WorkItem> &Items) const {
    return workloads::encodeWorkload(Items);
  }
};

/// Builds a TinyWorkload with deterministic contents.
inline TinyWorkload makeTinyWorkload(uint32_t NumLocal = 4,
                                     uint32_t NumImports = 3,
                                     uint64_t Seed = 42) {
  TinyWorkload W;
  W.NumLocal = NumLocal;
  W.NumImports = NumImports;

  if (NumImports != 0) {
    workloads::LibraryDef Lib;
    Lib.Name = "libtest.so";
    Lib.Path = "/lib/libtest.so";
    for (uint32_t I = 0; I != NumImports; ++I) {
      workloads::RegionDef Region;
      Region.Name = "libfn" + std::to_string(I);
      Region.Blocks = 4;
      Region.InstsPerBlock = 8;
      Region.Seed = Seed + 100 + I;
      Lib.Regions.push_back(std::move(Region));
    }
    W.Registry.add(workloads::buildLibrary(Lib));
  }

  workloads::AppDef Def;
  Def.Name = "tinyapp";
  Def.Path = "/bin/tinyapp";
  for (uint32_t I = 0; I != NumImports; ++I)
    Def.Slots.push_back(workloads::FunctionSlot::import(
        "libtest.so", "libfn" + std::to_string(I)));
  for (uint32_t I = 0; I != NumLocal; ++I) {
    workloads::RegionDef Region;
    Region.Name = "local" + std::to_string(I);
    Region.Blocks = 4;
    Region.InstsPerBlock = 8;
    Region.Seed = Seed + I;
    Def.Slots.push_back(workloads::FunctionSlot::local(std::move(Region)));
  }
  W.App = workloads::buildExecutable(Def);
  return W;
}

} // namespace tests
} // namespace pcc

#endif // PCC_TESTS_TESTUTILS_H
