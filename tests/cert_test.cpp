//===- tests/cert_test.cpp - proof-carrying certificate adversarial suite -===//
//
// The certificate layer under attack: a genuine certificate must check
// (self-contained and against the real source), while every tampered,
// stale, rebound or fabricated certificate must be REJECTED — never
// falsely accepted — with the full symbolic prover as the fallback.
// Covers the trusted checker directly (bit flips over the whole blob,
// body/source rebinding, seeded miscompiles across 20 seeds with the
// adversary allowed to fix up the binding CRCs), the persisted cert
// section (flag-gated byte identity for uncertified files, corrupt
// section degrade), the prime-time policy (checker-served warm runs,
// prover fallback and quarantine-free recovery from tampering), the
// offline passes (pcc-dbcheck plain reject / repair strip / deep
// regenerate), the tiered store's fill-time self-check, and the fleet
// simulation's proof-work ledger on both the honest and tampered legs.
//
// Built as its own CTest executable (cert_test) so the --certs soak leg
// of scripts/check.sh can run exactly this binary under ASan and TSan.
//
//===----------------------------------------------------------------------===//

#include "analysis/CertChecker.h"
#include "analysis/Certificate.h"
#include "analysis/Validator.h"
#include "dbi/Compiler.h"
#include "persist/CacheDatabase.h"
#include "persist/CacheView.h"
#include "persist/DbCheck.h"
#include "persist/MemoryStore.h"
#include "persist/Session.h"
#include "persist/TieredStore.h"
#include "support/Hashing.h"
#include "support/Random.h"
#include "workloads/Fleet.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::Opcode;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

// A straight-line trace body touching every effect class.
std::vector<Instruction> effectBody() {
  return {
      isa::makeLdi(1, 0x40),
      isa::makeLoad(2, 1, 0),
      isa::makeAlu(Opcode::Add, 3, 2, 2),
      isa::makeStore(1, 4, 3),
      isa::makeBranch(Opcode::Beq, 3, 0, 0x2000),
      isa::makeAluImm(Opcode::Addi, 4, 3, 1),
      isa::makeSys(7),
  };
}

// Deterministic pseudo-random straight-line body for \p Seed: a mix of
// constants, loads, stores, ALU ops and a conditional branch, ending in
// a syscall terminator. Every seed yields a different proof shape.
std::vector<Instruction> seededBody(uint64_t Seed) {
  Rng R(Seed * 2654435761u + 17);
  std::vector<Instruction> Body;
  Body.push_back(isa::makeLdi(1, 0x100 + (Seed % 64) * 8));
  uint32_t Len = 5 + static_cast<uint32_t>(R.nextBelow(8));
  for (uint32_t I = 0; I != Len; ++I) {
    uint32_t A = 1 + static_cast<uint32_t>(R.nextBelow(6));
    uint32_t B = 1 + static_cast<uint32_t>(R.nextBelow(6));
    uint32_t D = 1 + static_cast<uint32_t>(R.nextBelow(6));
    switch (R.nextBelow(6)) {
    case 0:
      Body.push_back(isa::makeLdi(D, static_cast<uint32_t>(R.next())));
      break;
    case 1:
      Body.push_back(
          isa::makeLoad(D, 1, static_cast<uint32_t>(R.nextBelow(8)) * 4));
      break;
    case 2:
      Body.push_back(
          isa::makeStore(1, static_cast<uint32_t>(R.nextBelow(8)) * 4, A));
      break;
    case 3:
      Body.push_back(isa::makeAlu(
          R.nextBelow(2) ? Opcode::Add : Opcode::Sub, D, A, B));
      break;
    case 4:
      Body.push_back(isa::makeAluImm(
          Opcode::Addi, D, A, static_cast<uint32_t>(R.nextBelow(64))));
      break;
    default:
      Body.push_back(isa::makeBranch(
          Opcode::Beq, A, 0,
          0x4000 + static_cast<uint32_t>(R.nextBelow(16)) * 8));
      break;
    }
  }
  Body.push_back(isa::makeSys(3 + static_cast<uint32_t>(Seed % 5)));
  return Body;
}

// A single-instruction mutation guaranteed to change guest-visible
// effects.
Instruction semanticMutation(const Instruction &Inst, uint32_t InstPc) {
  if (Inst.Op == Opcode::Halt)
    return isa::makeJmp(InstPc + isa::InstructionSize);
  return isa::makeHalt();
}

// Emits a certificate for the identity translation of \p Body.
std::vector<uint8_t> certify(uint32_t Start,
                             const std::vector<Instruction> &Body) {
  Certificate Cert;
  ValidationResult R = validateTranslation(Start, Body, Body, &Cert);
  EXPECT_TRUE(R.Equivalent) << R.message();
  Cert.OptGen = 1;
  return Cert.serialize();
}

/// Path of the single .pcc file in \p Dir.
std::string soleCachePath(const std::string &Dir) {
  auto Names = listDirectory(Dir);
  EXPECT_TRUE(Names.ok());
  std::string Found;
  if (Names)
    for (const std::string &Name : *Names)
      if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".pcc")
        Found = Dir + "/" + Name;
  EXPECT_FALSE(Found.empty());
  return Found;
}

/// One persistent run of \p W.
ErrorOr<persist::PersistentRunResult>
run(const TinyWorkload &W, const std::vector<uint8_t> &Input,
    const persist::CacheDatabase &Db,
    const persist::PersistOptions &Opts = persist::PersistOptions()) {
  return workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
}

/// Runs \p W cold+warm with the optimization tier until the sole cache
/// file carries promoted, certificate-bearing traces. Returns the file
/// path.
std::string growCertifiedCache(const TinyWorkload &W,
                               const persist::CacheDatabase &Db,
                               const std::string &Dir,
                               const std::vector<uint8_t> &Input) {
  persist::PersistOptions Opt;
  Opt.OptTier = true;
  auto Cold = run(W, Input, Db, Opt);
  EXPECT_TRUE(Cold.ok()) << Cold.status().toString();
  std::string Path = soleCachePath(Dir);
  auto File = Db.loadPath(Path);
  EXPECT_TRUE(File.ok());
  unsigned Certified = 0;
  for (const persist::TraceRecord &Rec : File->Traces)
    Certified += Rec.OptGen > 0 && !Rec.Cert.empty();
  EXPECT_GT(Certified, 0u) << "no promoted+certified traces to attack";
  return Path;
}

/// Flips one bit in every persisted certificate of the cache at
/// \p Path; returns how many were tampered.
unsigned tamperCerts(const persist::CacheDatabase &Db,
                     const std::string &Path) {
  auto File = Db.loadPath(Path);
  EXPECT_TRUE(File.ok());
  unsigned Tampered = 0;
  for (persist::TraceRecord &Rec : File->Traces) {
    if (Rec.Cert.empty())
      continue;
    Rec.Cert[Rec.Cert.size() / 2] ^= 0x10;
    ++Tampered;
  }
  EXPECT_GT(Tampered, 0u);
  EXPECT_TRUE(writeFileAtomic(Path, File->serialize()).ok());
  return Tampered;
}

} // namespace

//===----------------------------------------------------------------------===//
// Trusted checker: genuine certificates check, everything else rejects.
//===----------------------------------------------------------------------===//

TEST(CertProof, RoundTripAndSelfContainedCheck) {
  const uint32_t Start = 0x1000;
  std::vector<std::vector<Instruction>> Bodies{
      effectBody(),
      {isa::makeLdi(5, 0x3000), isa::makeCallr(5)},
      {isa::makeRet()},
      seededBody(7),
  };
  for (const auto &Body : Bodies) {
    std::vector<uint8_t> Blob = certify(Start, Body);
    // Self-contained: no expected source supplied (the L2-fill and
    // module-less dbcheck situation).
    CertCheckResult R =
        checkCertificateBlob(Blob.data(), Blob.size(), Start, Body);
    EXPECT_TRUE(R.ok()) << R.Detail;
    // Bound to the real guest bytes (the prime-time situation).
    R = checkCertificateBlob(Blob.data(), Blob.size(), Start, Body,
                             &Body);
    EXPECT_TRUE(R.ok()) << R.Detail;
  }

  // Sound elision: dead pure defs may be nopped out; the certificate
  // still proves the elided body against the original source.
  std::vector<Instruction> Source{
      isa::makeLdi(3, 5),
      isa::makeLdi(4, 7),
      isa::makeAlu(Opcode::Add, 3, 4, 4),
      isa::makeJmp(0x2000),
  };
  std::vector<Instruction> Elided = Source;
  Elided[0] = isa::makeNop();
  Certificate Cert;
  ValidationResult V = validateTranslation(Start, Source, Elided, &Cert);
  ASSERT_TRUE(V.Equivalent) << V.message();
  std::vector<uint8_t> Blob = Cert.serialize();
  CertCheckResult R =
      checkCertificateBlob(Blob.data(), Blob.size(), Start, Elided,
                           &Source);
  EXPECT_TRUE(R.ok()) << R.Detail;
}

TEST(CertProof, RejectsStaleAndReboundBodies) {
  const uint32_t Start = 0x1000;
  const std::vector<Instruction> Body = effectBody();
  std::vector<uint8_t> Blob = certify(Start, Body);

  // Stale generation: the body was re-promoted (here: one instruction
  // legally replaced) after the certificate was cut. BodyCrc binding
  // must reject — the proof covers bytes that no longer exist.
  std::vector<Instruction> NewerGen = Body;
  NewerGen[5] = isa::makeAluImm(Opcode::Addi, 4, 3, 2);
  CertCheckResult R =
      checkCertificateBlob(Blob.data(), Blob.size(), Start, NewerGen);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Status, CertCheckStatus::BindMismatch) << R.Detail;

  // Wrong address: a certificate for another trace's start.
  R = checkCertificateBlob(Blob.data(), Blob.size(), Start + 8, Body);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Status, CertCheckStatus::BindMismatch) << R.Detail;

  // Source rebinding: the module's bytes at Start changed since the
  // proof (the embedded source no longer matches reality).
  std::vector<Instruction> OtherSource = Body;
  OtherSource[0] = isa::makeLdi(1, 0x44);
  R = checkCertificateBlob(Blob.data(), Blob.size(), Start, Body,
                           &OtherSource);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Status, CertCheckStatus::BindMismatch) << R.Detail;
}

TEST(CertProof, EveryByteFlipRejectedNeverAccepted) {
  const uint32_t Start = 0x1000;
  const std::vector<Instruction> Body = effectBody();
  const std::vector<uint8_t> Blob = certify(Start, Body);

  // Flip every byte of the blob (header, embedded source, steps,
  // witnesses, digests, trailing CRC): the check may fail at any stage
  // but must NEVER pass. Zero false accepts.
  unsigned Rejected = 0;
  for (size_t I = 0; I != Blob.size(); ++I) {
    std::vector<uint8_t> Bad = Blob;
    Bad[I] ^= 0xff;
    CertCheckResult R =
        checkCertificateBlob(Bad.data(), Bad.size(), Start, Body);
    Rejected += !R.ok();
    EXPECT_FALSE(R.ok()) << "byte " << I << " flip accepted";
  }
  EXPECT_EQ(Rejected, Blob.size());

  // Single-bit flips across the fixed header (the adversary's cheapest
  // edit: version, counts, binding CRCs).
  for (size_t I = 0; I != std::min<size_t>(48, Blob.size()); ++I)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::vector<uint8_t> Bad = Blob;
      Bad[I] ^= static_cast<uint8_t>(1u << Bit);
      CertCheckResult R =
          checkCertificateBlob(Bad.data(), Bad.size(), Start, Body);
      EXPECT_FALSE(R.ok())
          << "header bit " << I << ":" << Bit << " flip accepted";
    }

  // Truncation at every length short of the full blob.
  for (size_t Len = 0; Len != Blob.size(); ++Len) {
    CertCheckResult R =
        checkCertificateBlob(Blob.data(), Len, Start, Body);
    EXPECT_FALSE(R.ok()) << "truncation to " << Len << " accepted";
  }
}

TEST(CertProof, SeededMiscompileNeverCertifiedNorAccepted) {
  // Over 20 seeds: (a) the prover must refuse to emit a certificate for
  // a miscompiled body, and (b) a genuine certificate re-bound by the
  // adversary to the miscompiled body — with the binding CRC fixed up
  // so BindMismatch alone cannot save us — must still be rejected by
  // the replayed obligations. 100% rejection, zero false accepts.
  const uint32_t Start = 0x1000;
  unsigned Seeded = 0, Rejected = 0;
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    const std::vector<Instruction> Source = seededBody(Seed);
    Certificate Genuine;
    ValidationResult V =
        validateTranslation(Start, Source, Source, &Genuine);
    ASSERT_TRUE(V.Equivalent) << V.message();

    size_t Idx = Seed % Source.size();
    std::vector<Instruction> Bad = Source;
    Bad[Idx] = semanticMutation(
        Bad[Idx],
        Start + static_cast<uint32_t>(Idx) * isa::InstructionSize);
    if (Bad[Idx] == Source[Idx])
      continue;
    ++Seeded;

    // (a) The prover refuses: no certificate for a miscompile.
    Certificate None;
    V = validateTranslation(Start, Source, Bad, &None);
    ASSERT_FALSE(V.Equivalent);
    EXPECT_TRUE(None.Steps.empty() && None.Source.empty())
        << "prover emitted a certificate for a miscompile";

    // (b) The adversary re-binds the genuine proof to the bad body,
    // fixing up BodyCrc so the cheap binding check passes.
    Certificate Forged = Genuine;
    const std::vector<uint8_t> BadBytes = isa::encodeAll(Bad);
    Forged.BodyCrc = crc32(BadBytes.data(), BadBytes.size());
    std::vector<uint8_t> Blob = Forged.serialize();
    CertCheckResult R =
        checkCertificateBlob(Blob.data(), Blob.size(), Start, Bad);
    Rejected += !R.ok();
    EXPECT_FALSE(R.ok()) << "forged certificate accepted";
  }
  EXPECT_GT(Seeded, 0u);
  EXPECT_EQ(Rejected, Seeded) << "a seeded miscompile was accepted";
}

//===----------------------------------------------------------------------===//
// Persisted certificate section.
//===----------------------------------------------------------------------===//

TEST(CertSection, UncertifiedFilesStayByteIdentical) {
  TinyWorkload W = makeTinyWorkload(3, 2, 777);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  const std::vector<uint8_t> Input = W.allSlotsInput(4);
  std::string Path = growCertifiedCache(W, Db, Dir.path(), Input);

  auto Certified = readFile(Path);
  ASSERT_TRUE(Certified.ok());
  auto View = persist::CacheFileView::open(*Certified);
  ASSERT_TRUE(View.ok()) << View.status().toString();
  EXPECT_TRUE(View->certsFlagged());
  EXPECT_TRUE(View->certsPresent());

  // Clearing every certificate and re-serializing must drop the whole
  // trailing section AND the header flag — everything between the
  // header and the payload end is byte-identical, so a consumer that
  // never sees certificates reads exactly the bytes it always did.
  auto File = persist::CacheFile::deserialize(*Certified);
  ASSERT_TRUE(File.ok());
  for (persist::TraceRecord &Rec : File->Traces)
    Rec.Cert.clear();
  std::vector<uint8_t> Plain = File->serialize();
  ASSERT_LT(Plain.size(), Certified->size());
  auto PlainView = persist::CacheFileView::open(Plain);
  ASSERT_TRUE(PlainView.ok());
  EXPECT_FALSE(PlainView->certsFlagged());
  const size_t HeaderBytes = 76;
  ASSERT_GT(Plain.size(), HeaderBytes);
  EXPECT_TRUE(std::equal(Plain.begin() + HeaderBytes, Plain.end(),
                         Certified->begin() + HeaderBytes))
      << "cert section not purely trailing";

  // A run that never emits certificates produces an unflagged file.
  TempDir Dir2;
  persist::CacheDatabase Db2(Dir2.path());
  persist::PersistOptions NoEmit;
  NoEmit.OptTier = true;
  NoEmit.EmitCertificates = false;
  ASSERT_TRUE(run(W, Input, Db2, NoEmit).ok());
  auto File2 = Db2.loadPath(soleCachePath(Dir2.path()));
  ASSERT_TRUE(File2.ok());
  unsigned Promoted = 0;
  for (const persist::TraceRecord &Rec : File2->Traces) {
    Promoted += Rec.OptGen > 0;
    EXPECT_TRUE(Rec.Cert.empty());
  }
  EXPECT_GT(Promoted, 0u);
  auto Bytes2 = readFile(soleCachePath(Dir2.path()));
  ASSERT_TRUE(Bytes2.ok());
  auto View2 = persist::CacheFileView::open(*Bytes2);
  ASSERT_TRUE(View2.ok());
  EXPECT_FALSE(View2->certsFlagged());
}

TEST(CertSection, CorruptSectionDegradesFileStaysUsable) {
  TinyWorkload W = makeTinyWorkload(3, 2, 778);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  const std::vector<uint8_t> Input = W.allSlotsInput(4);
  std::string Path = growCertifiedCache(W, Db, Dir.path(), Input);

  // Smash the section magic ("PCRT", scanned from the file tail): the
  // header still flags certificates but the section no longer parses.
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  const uint8_t Magic[4] = {'P', 'C', 'R', 'T'};
  size_t MagicAt = Bytes->size();
  for (size_t I = Bytes->size(); I-- >= 4;)
    if (std::equal(Magic, Magic + 4, Bytes->begin() + (I - 4))) {
      MagicAt = I - 4;
      break;
    }
  ASSERT_LT(MagicAt, Bytes->size()) << "cert section magic not found";
  (*Bytes)[MagicAt] ^= 0xff;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());

  auto View = persist::CacheFileView::openFile(Path);
  ASSERT_TRUE(View.ok()) << View.status().toString();
  EXPECT_TRUE(View->certsFlagged());
  EXPECT_TRUE(View->certSectionCorrupt());
  EXPECT_FALSE(View->certsPresent());

  // The warm run still primes and executes correctly — it simply has
  // no certificates to check (and no verification demanded, none run).
  persist::PersistOptions Opt;
  Opt.OptTier = true;
  auto Warm = run(W, Input, Db, Opt);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_EQ(Warm->Stats.CertsChecked, 0u);
}

//===----------------------------------------------------------------------===//
// Prime-time policy: checker serves, prover backstops, results intact.
//===----------------------------------------------------------------------===//

TEST(CertPrime, WarmRunsServedByTrustedChecker) {
  TinyWorkload W = makeTinyWorkload(3, 2, 779);
  TempDir Dir, RefDir;
  persist::CacheDatabase Db(Dir.path()), Ref(RefDir.path());
  const std::vector<uint8_t> Input = W.allSlotsInput(4);
  growCertifiedCache(W, Db, Dir.path(), Input);

  persist::PersistOptions Opt;
  Opt.OptTier = true;
  auto Warm = run(W, Input, Db, Opt);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  auto Baseline = run(W, Input, Ref);
  ASSERT_TRUE(Baseline.ok());
  EXPECT_TRUE(Warm->Run.observablyEquals(Baseline->Run));
  // Every promoted install was served by the checker; the prover never
  // ran and nothing failed.
  EXPECT_GT(Warm->Stats.CertsChecked, 0u);
  EXPECT_EQ(Warm->Stats.CertChecksFailed, 0u);
  EXPECT_EQ(Warm->Stats.ProofsReplayed, 0u);
  EXPECT_EQ(Warm->Stats.VerifyFailures, 0u);
}

TEST(CertPrime, TamperedCertsFallBackToProverWithoutQuarantine) {
  TinyWorkload W = makeTinyWorkload(3, 2, 780);
  TempDir Dir, RefDir;
  persist::CacheDatabase Db(Dir.path()), Ref(RefDir.path());
  const std::vector<uint8_t> Input = W.allSlotsInput(4);
  std::string Path = growCertifiedCache(W, Db, Dir.path(), Input);
  unsigned Tampered = tamperCerts(Db, Path);

  persist::PersistOptions Opt;
  Opt.OptTier = true;
  auto Warm = run(W, Input, Db, Opt);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  auto Baseline = run(W, Input, Ref);
  ASSERT_TRUE(Baseline.ok());
  EXPECT_TRUE(Warm->Run.observablyEquals(Baseline->Run));

  // 100% rejection: every tampered certificate that was checked failed,
  // and the prover re-vouched for each rejected body (they are genuine
  // translations, only the proof blob lied) — so nothing quarantined.
  EXPECT_GT(Warm->Stats.CertsChecked, 0u);
  EXPECT_EQ(Warm->Stats.CertChecksFailed, Warm->Stats.CertsChecked);
  EXPECT_GE(Warm->Stats.CertChecksFailed, 1u);
  EXPECT_LE(Warm->Stats.CertChecksFailed, Tampered);
  EXPECT_GE(Warm->Stats.ProofsReplayed, Warm->Stats.CertChecksFailed);
  EXPECT_EQ(Warm->Stats.VerifyFailures, 0u);
  auto Q = Db.quarantined();
  ASSERT_TRUE(Q.ok());
  EXPECT_TRUE(Q->empty());
}

//===----------------------------------------------------------------------===//
// Offline passes: pcc-dbcheck plain / repair / deep.
//===----------------------------------------------------------------------===//

TEST(CertDbCheck, PlainPassRejectsTamperRepairStrips) {
  TinyWorkload W = makeTinyWorkload(3, 2, 781);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  std::string Path =
      growCertifiedCache(W, Db, Dir.path(), W.allSlotsInput(4));

  // Clean database: certificates checked, none rejected.
  auto Before = persist::checkDatabase(Dir.path());
  ASSERT_TRUE(Before.ok());
  EXPECT_GT(Before->CertsChecked, 0u);
  EXPECT_EQ(Before->CertsRejected, 0u);
  EXPECT_TRUE(Before->clean());

  unsigned Tampered = tamperCerts(Db, Path);

  // Plain pass: every tampered certificate rejected, database NOT
  // clean even though every payload CRC passes.
  auto Report = persist::checkDatabase(Dir.path());
  ASSERT_TRUE(Report.ok());
  EXPECT_EQ(Report->CertsRejected, Tampered);
  EXPECT_FALSE(Report->clean());

  // Repair strips the lying blobs; the database is clean again (the
  // traces themselves were never bad) and nothing is left to check.
  persist::DbCheckOptions Fix;
  Fix.Repair = true;
  auto Repaired = persist::checkDatabase(Dir.path(), Fix);
  ASSERT_TRUE(Repaired.ok());
  EXPECT_EQ(Repaired->CertsRejected, Tampered);
  EXPECT_GT(Repaired->FilesRepaired, 0u);
  auto After = persist::checkDatabase(Dir.path());
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(After->CertsChecked, 0u);
  EXPECT_TRUE(After->clean());
}

TEST(CertDbCheck, DeepRepairRegeneratesCertificates) {
  TinyWorkload W = makeTinyWorkload(3, 2, 782);
  TempDir Dir, ModDir;
  persist::CacheDatabase Db(Dir.path());
  std::string Path =
      growCertifiedCache(W, Db, Dir.path(), W.allSlotsInput(4));
  unsigned Tampered = tamperCerts(Db, Path);

  persist::DbCheckOptions Deep;
  Deep.Deep = true;
  Deep.Repair = true;
  std::string AppPath = ModDir.path() + "/app.mod";
  ASSERT_TRUE(writeFileAtomic(AppPath, W.App->serialize()).ok());
  Deep.ModulePaths.push_back(AppPath);
  auto Lib = W.Registry.find("libtest.so");
  ASSERT_TRUE(Lib != nullptr);
  std::string LibPath = ModDir.path() + "/lib.mod";
  ASSERT_TRUE(writeFileAtomic(LibPath, Lib->serialize()).ok());
  Deep.ModulePaths.push_back(LibPath);

  // Deep repair: rejected certificates are replayed by the full prover
  // (which vouches for the bodies) and regenerated in place.
  auto Report = persist::checkDatabase(Dir.path(), Deep);
  ASSERT_TRUE(Report.ok());
  EXPECT_EQ(Report->CertsRejected, Tampered);
  EXPECT_GE(Report->CertsReplayedByProver, Tampered);
  EXPECT_EQ(Report->TracesMismatched, 0u);

  // The regenerated certificates check clean on a plain pass.
  auto After = persist::checkDatabase(Dir.path());
  ASSERT_TRUE(After.ok());
  EXPECT_GE(After->CertsChecked, Tampered);
  EXPECT_EQ(After->CertsRejected, 0u);
  EXPECT_TRUE(After->clean());
}

//===----------------------------------------------------------------------===//
// Tiered store: fill-time self-check flags tampered blobs early.
//===----------------------------------------------------------------------===//

TEST(CertTiered, FillSelfCheckFlagsTamperedBlobs) {
  TinyWorkload W = makeTinyWorkload(3, 2, 783);
  auto L2 = std::make_shared<persist::MemoryStore>("<remote>");
  const std::vector<uint8_t> Input = W.allSlotsInput(4);

  // Machine A publishes a certified cache through its tier.
  {
    auto Tier = std::make_shared<persist::TieredStore>(
        std::make_shared<persist::MemoryStore>("<l1-a>"), L2);
    persist::CacheDatabase Db(Tier);
    persist::PersistOptions Opt;
    Opt.OptTier = true;
    ASSERT_TRUE(run(W, Input, Db, Opt).ok());
    ASSERT_TRUE(run(W, Input, Db, Opt).ok()); // publish promoted gen
  }

  // The adversary flips one bit in every L2 certificate.
  auto Refs = L2->listRefs();
  ASSERT_TRUE(Refs.ok());
  unsigned Tampered = 0;
  for (const std::string &Ref : *Refs) {
    auto File = L2->loadRef(Ref);
    ASSERT_TRUE(File.ok());
    for (persist::TraceRecord &Rec : File->Traces) {
      if (Rec.Cert.empty())
        continue;
      Rec.Cert[Rec.Cert.size() / 2] ^= 0x10;
      ++Tampered;
    }
    ASSERT_TRUE(L2->putRef(Ref, *File).ok());
  }
  ASSERT_GT(Tampered, 0u);

  // Machine B fills from L2: the module-less self-check counts every
  // tampered blob, the blob passes through, and prime's checker +
  // prover recover the run bit-exactly.
  auto Tier = std::make_shared<persist::TieredStore>(
      std::make_shared<persist::MemoryStore>("<l1-b>"), L2);
  persist::CacheDatabase Db(Tier);
  persist::PersistOptions Opt;
  Opt.OptTier = true;
  auto Warm = run(W, Input, Db, Opt);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  persist::TieredStats S = Tier->tieredStats();
  EXPECT_GT(S.CertFillChecks, 0u);
  EXPECT_GT(S.CertFillRejects, 0u);
  EXPECT_EQ(S.CertFillRejects, S.CertFillChecks)
      << "an untampered blob was flagged, or a tampered one passed";
  EXPECT_GT(Warm->Stats.CertChecksFailed, 0u);
  EXPECT_GE(Warm->Stats.ProofsReplayed, Warm->Stats.CertChecksFailed);
}

//===----------------------------------------------------------------------===//
// Fleet: the proof-work ledger on the honest and the tampered legs.
//===----------------------------------------------------------------------===//

TEST(CertFleet, LedgerCertServedAndTamperSoundness) {
  workloads::FleetOptions Opts;
  Opts.Machines = 6;
  Opts.Rounds = 3;
  Opts.Apps = 3;
  Opts.AppVersions = 2;
  Opts.Libraries = 3;
  Opts.RegionsPerLibrary = 4;
  Opts.Seed = 11;
  Opts.OptTier = true;

  // Honest leg: the checker carries >= 90% of the verification load
  // and never rejects a genuine certificate.
  auto Honest = workloads::runFleet(Opts);
  ASSERT_TRUE(Honest.ok()) << Honest.status().toString();
  EXPECT_GT(Honest->CertsChecked, 0u);
  EXPECT_EQ(Honest->CertChecksFailed, 0u);
  EXPECT_GE(Honest->certServedRatio(), 0.90);
  EXPECT_EQ(Honest->CertFillRejects, 0u);

  // Tampered leg: every certificate in L2 is bit-flipped between
  // rounds; the checker rejects (soundness: a tampered cert can only
  // be rejected), the prover re-vouches for every affected body, and
  // every run still completes.
  Opts.TamperCerts = true;
  auto Tampered = workloads::runFleet(Opts);
  ASSERT_TRUE(Tampered.ok()) << Tampered.status().toString();
  EXPECT_GT(Tampered->CertsTampered, 0u);
  EXPECT_GT(Tampered->CertChecksFailed, 0u);
  EXPECT_GE(Tampered->ProofsReplayed, Tampered->CertChecksFailed);
  EXPECT_GT(Tampered->CertFillRejects, 0u);
  EXPECT_EQ(Tampered->TotalRuns,
            uint64_t(Opts.Machines) * Opts.Rounds);
}
