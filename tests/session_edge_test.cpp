//===- tests/session_edge_test.cpp - persistence edge cases ---------------===//
//
// Less-traveled paths of the persistent cache manager: library
// upgrades that change a dependency's path, pool exhaustion during
// install, linking disabled, donor/store path interplay, and the
// thread scheduler's corner cases.
//
//===----------------------------------------------------------------------===//

#include "dbi/Compiler.h"
#include "persist/CacheDatabase.h"
#include "persist/Session.h"
#include "replay/Recorder.h"
#include "replay/Replay.h"
#include "support/FaultInjector.h"
#include "vm/Threads.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::persist;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

TEST(SessionEdge, LibraryUpgradeWithNewPathDropsStaleTraces) {
  // A library is replaced by a new build at a *different path* (the
  // name the app links stays the same). The old cache's module entry
  // no longer corresponds to any loaded module, and its region is now
  // occupied by the replacement — the stale traces must neither be
  // installed nor carried through accumulation.
  TinyWorkload W = makeTinyWorkload(2, 3);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(3);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  // Install the upgraded library: same module name (the app still
  // links "libtest.so"), new on-disk path — copy the code under the
  // new identity.
  auto Fresh = std::make_shared<binary::Module>(
      "libtest.so", "/lib/libtest-2.so",
      binary::ModuleKind::SharedLibrary);
  Fresh->setInstructions(W.Registry.find("libtest.so")->instructions());
  Fresh->setData(W.Registry.find("libtest.so")->data());
  for (const auto &Sym : W.Registry.find("libtest.so")->symbols())
    Fresh->addSymbol(Sym.Name, Sym.Offset);
  for (uint32_t R : W.Registry.find("libtest.so")->textRelocations())
    Fresh->addTextRelocation(R);
  for (uint32_t R : W.Registry.find("libtest.so")->dataRelocations())
    Fresh->addDataRelocation(R);
  W.Registry.add(Fresh);

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  // Old library traces unusable; app traces still fine.
  EXPECT_GT(Warm->Prime.TracesSkipped, 0u);
  EXPECT_GT(Warm->Stats.TracesCompiled, 0u);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));

  // The rewritten cache must reference only current modules: no stale
  // path, no address-overlapping carry-through.
  PersistentSession Probe(Db);
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  ASSERT_EQ(Files->size(), 1u);
  auto File = Db.loadPath(Dir.path() + "/" + (*Files)[0]);
  ASSERT_TRUE(File.ok());
  for (const ModuleKey &Key : File->Modules)
    EXPECT_NE(Key.Path, "/lib/libtest.so")
        << "stale module key carried through";
}

TEST(SessionEdge, DataPoolExhaustionDuringInstallDegradesGracefully) {
  TinyWorkload W = makeTinyWorkload(8, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(3);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  // Warm run with a data pool too small to hold every persisted trace:
  // install stops early, the rest is retranslated, results unchanged.
  dbi::EngineOptions Tiny;
  Tiny.DataPoolBytes = 6000;
  Tiny.CodePoolBytes = 1 << 20;
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       PersistOptions(), nullptr, Tiny);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_GT(Warm->Prime.TracesSkipped, 0u);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

TEST(SessionEdge, CodePoolTooSmallAbandonsPersistence) {
  TinyWorkload W = makeTinyWorkload(8, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(3);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());

  dbi::EngineOptions Tiny;
  Tiny.CodePoolBytes = 2048; // Smaller than the persisted pool.
  Tiny.DataPoolBytes = 1 << 20;
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       PersistOptions(), nullptr, Tiny);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  // Persistence abandoned (Section 3.2.2: "If the pools are
  // unavailable, persistence is abandoned and execution continues").
  EXPECT_EQ(Warm->Prime.TracesInstalled, 0u);
  EXPECT_FALSE(Warm->Prime.RejectReason.empty());
  EXPECT_TRUE(Warm->Run.ok());
}

TEST(SessionEdge, LinkingDisabledStillReusesTraces) {
  TinyWorkload W = makeTinyWorkload(3, 1);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(4);
  dbi::EngineOptions NoLinks;
  NoLinks.EnableLinking = false;
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       PersistOptions(), nullptr,
                                       NoLinks)
                  .ok());
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       PersistOptions(), nullptr,
                                       NoLinks);
  ASSERT_TRUE(Warm.ok());
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u);
  EXPECT_EQ(Warm->Prime.LinksRestored, 0u);
}

TEST(SessionEdge, StoreAsPathDoesNotTouchDatabaseSlot) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  PersistOptions Opts;
  Opts.StoreAsPath = Dir.path() + "/custom-location.pcc";
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(2), Db, Opts)
                  .ok());
  EXPECT_TRUE(fileExists(Opts.StoreAsPath));
  // The keyed slot stays empty: the next default run finds nothing.
  PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  auto R = workloads::runPersistent(W.Registry, W.App,
                                    W.allSlotsInput(2), Db, ReadOnly);
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R->Prime.CacheFound);
}

TEST(SessionEdge, EmptyProgramCacheRoundTrips) {
  // A program that exits immediately: the cache holds a single trace.
  TinyWorkload W = makeTinyWorkload(1, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.input({}); // No work items at all.
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok());
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u);
  EXPECT_GT(Warm->Prime.TracesInstalled, 0u);
}

TEST(SessionEdge, PrimeOnlySessionLeavesNoFile) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(1), Db,
                                       ReadOnly)
                  .ok());
  auto Stats = Db.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 0u);
}

TEST(ThreadSchedulerUnit, RotatesOnlyOverLiveThreads) {
  vm::CpuState Main;
  Main.Pc = 0x1000;
  vm::ThreadScheduler Threads(Main);
  loader::AddressSpace Space;
  vm::SyscallEnv Env;

  // Spawn two threads.
  for (uint32_t I = 0; I != 2; ++I) {
    Env.PendingSpawn = vm::SpawnRequest{0x2000 + I * 0x100, I};
    auto Alive = Threads.afterSyscall(Env, Space, 0x1008);
    ASSERT_TRUE(Alive.ok());
    EXPECT_TRUE(*Alive);
  }
  EXPECT_EQ(Threads.threadCount(), 3u);
  EXPECT_EQ(Threads.liveCount(), 3u);

  // Kill threads one at a time; rotation must skip the dead.
  unsigned Ends = 0;
  for (unsigned I = 0; I != 3; ++I) {
    Env.CurrentThreadExited = true;
    auto Alive = Threads.afterSyscall(
        Env, Space, Threads.current().Cpu.Pc);
    ASSERT_TRUE(Alive.ok());
    if (!*Alive)
      ++Ends;
    else
      EXPECT_FALSE(Threads.current().Done);
  }
  EXPECT_EQ(Ends, 1u) << "program ends exactly when the last thread "
                         "exits";
}

TEST(ThreadSchedulerUnit, SpawnMapsDisjointStacks) {
  vm::CpuState Main;
  vm::ThreadScheduler Threads(Main);
  loader::AddressSpace Space;
  vm::SyscallEnv Env;
  for (uint32_t I = 0; I != 4; ++I) {
    Env.PendingSpawn = vm::SpawnRequest{0x1000, I};
    ASSERT_TRUE(Threads.afterSyscall(Env, Space, 0).ok());
  }
  // All four stacks mapped, all writable, all distinct.
  for (uint32_t I = 1; I <= 4; ++I) {
    uint32_t Low = vm::ThreadScheduler::ThreadStackBase +
                   (I - 1) * vm::ThreadScheduler::ThreadStackStride;
    EXPECT_TRUE(Space.isMapped(Low));
    EXPECT_TRUE(Space.write32(Low, I).ok());
  }
}

TEST(SessionEdge, FlushDuringPrimedRunDoesNotShrinkCache) {
  // A mid-run cache flush discards resident traces, but the write-back
  // must merge the still-valid persisted records so accumulation stays
  // monotone under pool pressure (the paper writes the cache "whenever
  // the intra-execution code cache becomes full").
  TinyWorkload W = makeTinyWorkload(8, 0, /*Seed=*/31);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(4);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  std::string Path = Dir.path() + "/" + (*Files)[0];
  auto Before = Db.loadPath(Path);
  ASSERT_TRUE(Before.ok());

  // Warm run with pools so small that flushes are inevitable. The
  // persisted pool itself does not fit, so install is abandoned, the
  // engine flushes repeatedly — and the rewritten file must still
  // contain at least the old coverage.
  dbi::EngineOptions Tiny;
  Tiny.CodePoolBytes = 3000;
  Tiny.DataPoolBytes = 3000;
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       persist::PersistOptions(),
                                       nullptr, Tiny);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_GT(Warm->Stats.CacheFlushes, 0u);

  auto After = Db.loadPath(Path);
  ASSERT_TRUE(After.ok());
  EXPECT_GE(After->Traces.size(), Before->Traces.size())
      << "flush must not shrink the persistent cache";
  EXPECT_TRUE(After->validate().ok());

  // And a roomy warm run now compiles nothing.
  auto Full = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Full.ok());
  EXPECT_EQ(Full->Stats.TracesCompiled, 0u);
}

TEST(SessionEdge, LazyPayloadCorruptionDroppedAtFirstExecution) {
  // A v2 cache whose header, module table and index are intact but
  // whose payload is damaged primes successfully — the corruption is
  // only detectable at the damaged trace's first execution, where the
  // per-trace CRC fails, the trace is dropped and retranslated, and the
  // run completes with unchanged results.
  TinyWorkload W = makeTinyWorkload(4, 2, /*Seed=*/91);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(4);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  ASSERT_EQ(Files->size(), 1u);
  std::string Path = Dir.path() + "/" + (*Files)[0];
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  // The header stores the payload section's offset at byte 56 (see
  // CacheView.h); flip a code byte well inside the section.
  uint32_t PayloadOffset = 0;
  for (unsigned I = 0; I != 4; ++I)
    PayloadOffset |= static_cast<uint32_t>((*Bytes)[56 + I]) << (8 * I);
  size_t Victim = PayloadOffset + (Bytes->size() - PayloadOffset) / 2;
  (*Bytes)[Victim] ^= 0x5a;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());

  PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       ReadOnly);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_EQ(Warm->Prime.TracesInstalled, Cold->Stats.TracesCompiled)
      << "damaged payload must not be detectable at prime time";
  EXPECT_GT(Warm->Stats.TracesDroppedCorrupt, 0u);
  EXPECT_GT(Warm->Stats.TracesCompiled, 0u)
      << "dropped trace must be retranslated";
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

TEST(SessionEdge, OnlyExecutedTracesAreValidated) {
  // Prime N traces, execute a strict subset: exactly the executed
  // traces' payloads are CRC-checked and decoded.
  TinyWorkload W = makeTinyWorkload(8, 2, /*Seed=*/47);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(3), Db)
                  .ok());

  PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  auto Partial = workloads::runPersistent(
      W.Registry, W.App, W.input({{0, 3}, {1, 3}}), Db, ReadOnly);
  ASSERT_TRUE(Partial.ok());
  EXPECT_GT(Partial->Prime.TracesInstalled, 0u);
  EXPECT_EQ(Partial->Stats.TracesCompiled, 0u);
  EXPECT_EQ(Partial->Stats.TracePayloadsValidated,
            Partial->Stats.TracesReused)
      << "each executed persisted trace is validated exactly once";
  EXPECT_LT(Partial->Stats.TracePayloadsValidated,
            static_cast<uint64_t>(Partial->Prime.TracesInstalled))
      << "unexecuted traces' payloads must never be validated";
}

TEST(SessionEdge, WrittenCachesAlwaysValidateStructurally) {
  // Every write-back path (fresh, accumulated, post-flush merge,
  // inter-app) produces files that pass deep validation.
  TinyWorkload W = makeTinyWorkload(5, 2, /*Seed=*/13);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto InputA = W.input({{0, 3}, {1, 3}, {2, 3}});
  auto InputB = W.input({{3, 3}, {4, 3}, {5, 2}, {6, 2}});
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, InputA, Db).ok());
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, InputB, Db).ok());
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  for (const std::string &Name : *Files) {
    auto File = Db.loadPath(Dir.path() + "/" + Name);
    ASSERT_TRUE(File.ok());
    EXPECT_TRUE(File->validate().ok()) << Name;
  }
}

TEST(SessionEdge, RecordedSemanticMismatchQuarantineReplaysIdentically) {
  // A CRC-transparent miscompile is the nastiest quarantine trigger:
  // only deep validation catches it. Recording such a run must capture
  // the poisoned cache bytes, and replaying the log must re-reach the
  // identical SemanticMismatch verdict bit for bit.
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());

  // Seed one guaranteed-semantic mutation into every persisted trace
  // and re-serialize (which recomputes every CRC).
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  unsigned Mutated = 0;
  for (const std::string &Name : *Files) {
    if (Name.size() < 4 || Name.substr(Name.size() - 4) != ".pcc")
      continue;
    std::string Path = Dir.path() + "/" + Name;
    auto File = Db.loadPath(Path);
    ASSERT_TRUE(File.ok());
    for (TraceRecord &Rec : File->Traces) {
      auto Body = isa::decodeAll(
          Rec.Code.data() + dbi::TracePrologueBytes, Rec.GuestInstCount);
      ASSERT_TRUE(Body.ok());
      // A mid-body Halt (or, for a Halt, a fallthrough jump) always
      // changes guest-visible effects.
      isa::Instruction Mutant =
          Body->front().Op == isa::Opcode::Halt
              ? isa::makeJmp(Rec.GuestStart + isa::InstructionSize)
              : isa::makeHalt();
      auto Enc = Mutant.encode();
      std::copy(Enc.begin(), Enc.end(),
                Rec.Code.begin() + dbi::TracePrologueBytes);
      ++Mutated;
    }
    ASSERT_TRUE(writeFileAtomic(Path, File->serialize()).ok());
  }
  ASSERT_GT(Mutated, 0u);

  replay::RecordSpec Spec;
  Spec.LogName = "miscompile.pcrr";
  PersistOptions Opts;
  Opts.ValidateSemantic = true;
  auto Rec = replay::recordRun(W.Registry, W.App, Input, Db, Opts, Spec);
  ASSERT_TRUE(Rec.ok()) << Rec.status().toString();
  ASSERT_EQ(Rec->Quarantines.size(), 1u);
  EXPECT_EQ(Rec->Quarantines[0].Code,
            static_cast<uint8_t>(QuarantineReasonCode::SemanticMismatch));

  // The poisoned bytes traveled in the log (they are an input), the
  // quarantine entry names the recording, and the attached evidence
  // replays to the identical verdict.
  ASSERT_EQ(Rec->Caches.size(), 1u);
  auto Entries = Db.quarantined();
  ASSERT_TRUE(Entries.ok());
  ASSERT_EQ(Entries->size(), 1u);
  EXPECT_EQ(Entries->front().ReplayLog, "miscompile.pcrr");
  auto Attached =
      Db.backend()->readQuarantineAttachment("miscompile.pcrr");
  ASSERT_TRUE(Attached.ok());
  auto Parsed = replay::deserializeLog(*Attached);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();

  auto Out = replay::replayRun(*Parsed, replay::ReplayOptions());
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(replay::compareToRecording(*Parsed, *Out), "");
  ASSERT_EQ(Out->Quarantines.size(), 1u);
  EXPECT_EQ(Out->Quarantines[0].Code,
            static_cast<uint8_t>(QuarantineReasonCode::SemanticMismatch));
}
