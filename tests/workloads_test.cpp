//===- tests/workloads_test.cpp - workload generator tests ----------------===//

#include "workloads/Codegen.h"
#include "workloads/Coverage.h"
#include "workloads/Gui.h"
#include "workloads/Oracle.h"
#include "workloads/Spec2k.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::workloads;

TEST(Codegen, RegionSizeFormulaMatchesEmission) {
  RegionDef Def;
  Def.Name = "r";
  Def.Blocks = 5;
  Def.InstsPerBlock = 9;
  Def.YieldEveryBlocks = 2;
  Def.Seed = 3;
  LibraryDef Lib;
  Lib.Name = "l.so";
  Lib.Path = "/l.so";
  Lib.Regions.push_back(Def);
  auto M = buildLibrary(Lib);
  EXPECT_EQ(M->instructions().size(), Def.sizeInInsts());
}

TEST(Codegen, LibraryExportsAllRegions) {
  LibraryDef Lib;
  Lib.Name = "l.so";
  Lib.Path = "/l.so";
  for (int I = 0; I != 3; ++I) {
    RegionDef Def;
    Def.Name = "fn" + std::to_string(I);
    Def.Seed = I;
    Lib.Regions.push_back(Def);
  }
  auto M = buildLibrary(Lib);
  EXPECT_EQ(M->symbols().size(), 3u);
  for (int I = 0; I != 3; ++I)
    EXPECT_TRUE(M->findSymbol("fn" + std::to_string(I)).has_value());
  // Regions are laid out back to back.
  EXPECT_EQ(M->findSymbol("fn0").value(), 0u);
  EXPECT_GT(M->findSymbol("fn1").value(), 0u);
}

TEST(Codegen, ExecutableRunsEveryLocalAndImportedSlot) {
  tests::TinyWorkload W = tests::makeTinyWorkload(3, 3);
  auto R = runNative(W.Registry, W.App, W.allSlotsInput(2));
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_EQ(R->ExitCode, 0u);
  EXPECT_GT(R->InstructionsExecuted, 100u);
}

TEST(Codegen, IterationCountScalesWork) {
  tests::TinyWorkload W = tests::makeTinyWorkload(2, 0);
  auto One = runNative(W.Registry, W.App, W.allSlotsInput(1));
  auto Ten = runNative(W.Registry, W.App, W.allSlotsInput(10));
  ASSERT_TRUE(One.ok() && Ten.ok());
  EXPECT_GT(Ten->InstructionsExecuted, 5 * One->InstructionsExecuted);
}

TEST(Codegen, DifferentInputsExerciseDifferentCode) {
  tests::TinyWorkload W = tests::makeTinyWorkload(4, 0);
  auto A = runUnderEngine(W.Registry, W.App, W.input({{0, 2}, {1, 2}}));
  auto B = runUnderEngine(W.Registry, W.App, W.input({{2, 2}, {3, 2}}));
  ASSERT_TRUE(A.ok() && B.ok());
  // Coverage beyond the common main/driver must differ.
  double Cov = codeCoverage(A->Coverage, B->Coverage);
  EXPECT_LT(Cov, 0.9);
  EXPECT_GT(Cov, 0.0);
}

TEST(Codegen, YieldRegionsMakeSyscalls) {
  workloads::AppDef Def;
  Def.Name = "y";
  Def.Path = "/y";
  RegionDef Quiet;
  Quiet.Name = "quiet";
  Quiet.Seed = 1;
  Def.Slots.push_back(FunctionSlot::local(Quiet));
  RegionDef Noisy;
  Noisy.Name = "noisy";
  Noisy.YieldEveryBlocks = 1;
  Noisy.Seed = 2;
  Def.Slots.push_back(FunctionSlot::local(Noisy));
  auto App = buildExecutable(Def);
  loader::ModuleRegistry Registry;
  auto OnlyQuiet = runNative(Registry, App, encodeWorkload({{0, 5}}));
  auto OnlyNoisy = runNative(Registry, App, encodeWorkload({{1, 5}}));
  ASSERT_TRUE(OnlyQuiet.ok() && OnlyNoisy.ok());
  EXPECT_EQ(OnlyQuiet->SyscallCount, 1u); // Just the exit.
  EXPECT_GT(OnlyNoisy->SyscallCount, 5u);
}

TEST(CoverageDesigner, HitsUniformTarget) {
  CoverageMatrix Target(3, std::vector<double>(3, 0.8));
  for (int I = 0; I != 3; ++I)
    Target[I][I] = 1.0;
  CoverageDesign Design = designCoverage(Target, 50, 42);
  EXPECT_LT(Design.RmsError, 0.05);
  EXPECT_EQ(Design.InputRegions.size(), 3u);
  for (const auto &Set : Design.InputRegions)
    EXPECT_GT(Set.size(), 20u);
}

TEST(CoverageDesigner, HitsAsymmetricOracleTarget) {
  CoverageDesign Design =
      designCoverage(oracleCoverageTarget(), 90, 7);
  EXPECT_LT(Design.RmsError, 0.05);
  // The achieved matrix must reproduce Start's asymmetry: Start covered
  // ~47% by Mount, Mount covered only ~22% by Start.
  EXPECT_NEAR(Design.Achieved[0][1], 0.47, 0.08);
  EXPECT_NEAR(Design.Achieved[1][0], 0.22, 0.08);
}

TEST(CoverageDesigner, AchievedMatrixConsistentWithSets) {
  CoverageDesign Design = designCoverage(gccCoverageTarget(), 120, 9);
  CoverageMatrix FromSets = coverageOfSets(Design.InputRegions);
  for (size_t I = 0; I != FromSets.size(); ++I)
    for (size_t J = 0; J != FromSets.size(); ++J)
      EXPECT_NEAR(FromSets[I][J], Design.Achieved[I][J], 1e-9);
}

TEST(CoverageIntervals, BytesAndIntersection) {
  AddressIntervals A = {{0, 100}, {200, 300}};
  AddressIntervals B = {{50, 250}};
  EXPECT_EQ(intervalBytes(A), 200u);
  EXPECT_EQ(intervalIntersectionBytes(A, B), 100u);
  EXPECT_DOUBLE_EQ(codeCoverage(A, B), 0.5);
  EXPECT_DOUBLE_EQ(codeCoverage(B, A), 0.5);
  EXPECT_DOUBLE_EQ(codeCoverage(AddressIntervals{}, A), 1.0);
}

TEST(CoverageIntervals, ModuleRelativeAcrossBases) {
  // The same library at different bases in two processes: coverage must
  // match in module-relative space.
  auto Lib = std::make_shared<binary::Module>(
      "lib.so", "/lib.so", binary::ModuleKind::SharedLibrary);
  loader::LoadedModule At1000{Lib, 0x1000, 0x1000};
  loader::LoadedModule At8000{Lib, 0x8000, 0x1000};
  AddressIntervals CoverA = {{0x1100, 0x1200}};
  AddressIntervals CoverB = {{0x8100, 0x8200}};
  auto RelA = moduleRelativeCoverage(CoverA, {At1000});
  auto RelB = moduleRelativeCoverage(CoverB, {At8000});
  EXPECT_DOUBLE_EQ(moduleRelativeCodeCoverage(RelA, RelB), 1.0);
}

TEST(SpecSuite, BuildsElevenBenchmarks) {
  SpecSuite Suite = buildSpecSuite(/*Scale=*/0.05);
  EXPECT_EQ(Suite.Benchmarks.size(), 11u);
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    EXPECT_EQ(Bench.RefInputs.size(), Bench.Profile.NumRefInputs);
    EXPECT_FALSE(Bench.TrainInput.empty());
    // 252.eon is omitted, as in the paper.
    EXPECT_NE(Bench.Profile.Name, "252.eon");
  }
}

TEST(SpecSuite, BenchmarksRunCorrectlyUnderBothEngines) {
  SpecSuite Suite = buildSpecSuite(/*Scale=*/0.02);
  const SpecBenchmark &Bench = Suite.Benchmarks[0]; // gzip, scaled down.
  auto Native = runNative(Suite.Registry, Bench.App, Bench.TrainInput);
  auto Engine =
      runUnderEngine(Suite.Registry, Bench.App, Bench.TrainInput);
  ASSERT_TRUE(Native.ok() && Engine.ok());
  EXPECT_TRUE(Native->observablyEquals(Engine->Run));
}

TEST(SpecSuite, GccSpreadsDiscovery) {
  SpecSuite Suite = buildSpecSuite(/*Scale=*/0.25);
  const SpecBenchmark *Gcc = nullptr;
  const SpecBenchmark *Gzip = nullptr;
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    if (Bench.Profile.Name == "176.gcc")
      Gcc = &Bench;
    if (Bench.Profile.Name == "164.gzip")
      Gzip = &Bench;
  }
  ASSERT_TRUE(Gcc && Gzip);
  auto lateFraction = [&](const SpecBenchmark &Bench) {
    auto R = runUnderEngine(Suite.Registry, Bench.App,
                            Bench.RefInputs[0]);
    EXPECT_TRUE(R.ok());
    uint64_t Late = 0;
    for (const dbi::CompileEvent &Event : R->Stats.Timeline)
      if (Event.GuestInstsExecuted * 10 > R->Stats.GuestInstsExecuted)
        ++Late;
    return static_cast<double>(Late) / R->Stats.Timeline.size();
  };
  EXPECT_GT(lateFraction(*Gcc), 0.3);
  EXPECT_LT(lateFraction(*Gzip), 0.1);
}

TEST(GuiSuite, FiveAppsWithSharedLibraries) {
  GuiSuite Suite = buildGuiSuite();
  ASSERT_EQ(Suite.Apps.size(), 5u);
  for (const GuiApp &App : Suite.Apps) {
    EXPECT_GT(App.Libraries.size(), 5u);
    EXPECT_FALSE(App.StartupInput.empty());
  }
  // Every pair shares at least one library.
  for (size_t I = 0; I != 5; ++I)
    for (size_t J = I + 1; J != 5; ++J) {
      bool Shared = false;
      for (const std::string &Lib : Suite.Apps[I].Libraries)
        for (const std::string &Other : Suite.Apps[J].Libraries)
          Shared |= Lib == Other;
      EXPECT_TRUE(Shared) << I << " vs " << J;
    }
}

TEST(GuiSuite, AppsRunToCompletion) {
  GuiSuite Suite = buildGuiSuite();
  for (const GuiApp &App : Suite.Apps) {
    auto R = runNative(Suite.Registry, App.App, App.StartupInput);
    ASSERT_TRUE(R.ok()) << App.Name << ": " << R.status().toString();
    EXPECT_EQ(R->ExitCode, 0u);
  }
}

TEST(GuiSuite, SharedLibrariesLoadAtStableBases) {
  // Prelink-style bases: the same library maps at the same address in
  // different applications (the precondition for inter-application
  // reuse without PIC).
  GuiSuite Suite = buildGuiSuite();
  auto A = runUnderEngine(Suite.Registry, Suite.Apps[0].App,
                          Suite.Apps[0].StartupInput);
  auto B = runUnderEngine(Suite.Registry, Suite.Apps[1].App,
                          Suite.Apps[1].StartupInput);
  ASSERT_TRUE(A.ok() && B.ok());
  unsigned SharedAtSameBase = 0;
  unsigned SharedTotal = 0;
  for (const loader::LoadedModule &ModA : A->Modules) {
    if (ModA.Image->isExecutable())
      continue;
    for (const loader::LoadedModule &ModB : B->Modules) {
      if (ModB.Image->name() != ModA.Image->name())
        continue;
      ++SharedTotal;
      SharedAtSameBase += ModA.Base == ModB.Base ? 1 : 0;
    }
  }
  ASSERT_GT(SharedTotal, 0u);
  EXPECT_GT(SharedAtSameBase * 2, SharedTotal)
      << "most shared libraries must land at stable bases";
}

TEST(OracleSuite, FivePhasesRun) {
  OracleSetup Setup = buildOracleSetup(/*Scale=*/0.2);
  ASSERT_EQ(Setup.PhaseInputs.size(), OraclePhases);
  for (unsigned Phase = 0; Phase != OraclePhases; ++Phase) {
    auto R = runNative(Setup.Registry, Setup.App,
                       Setup.PhaseInputs[Phase]);
    ASSERT_TRUE(R.ok()) << oraclePhaseName(Phase);
    EXPECT_GT(R->SyscallCount, 1u) << "oracle is syscall-heavy";
  }
}

TEST(OracleSuite, PhaseNamesMatchPaper) {
  EXPECT_STREQ(oraclePhaseName(0), "Start");
  EXPECT_STREQ(oraclePhaseName(1), "Mount");
  EXPECT_STREQ(oraclePhaseName(2), "Open");
  EXPECT_STREQ(oraclePhaseName(3), "Work");
  EXPECT_STREQ(oraclePhaseName(4), "Close");
}

TEST(OracleSuite, StartPhaseIsLoner) {
  // Start is covered least by the other phases (Table 3b row maxima).
  OracleSetup Setup = buildOracleSetup(/*Scale=*/0.2);
  std::vector<AddressIntervals> Covers;
  for (unsigned Phase = 0; Phase != OraclePhases; ++Phase) {
    auto R = runUnderEngine(Setup.Registry, Setup.App,
                            Setup.PhaseInputs[Phase]);
    ASSERT_TRUE(R.ok());
    Covers.push_back(R->Coverage);
  }
  // Mount..Close cover each other far better than they cover Start's
  // counterpart direction.
  double StartByOthers = codeCoverage(Covers[1], Covers[0]);
  double OthersByOpen = codeCoverage(Covers[1], Covers[2]);
  EXPECT_LT(StartByOthers, 0.4);
  EXPECT_GT(OthersByOpen, 0.6);
}
