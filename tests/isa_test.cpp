//===- tests/isa_test.cpp - guest ISA unit tests --------------------------===//

#include "isa/Instruction.h"
#include "isa/Opcode.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::isa;

TEST(Opcode, TerminatorClassification) {
  EXPECT_TRUE(isTraceTerminator(Opcode::Jmp));
  EXPECT_TRUE(isTraceTerminator(Opcode::Jr));
  EXPECT_TRUE(isTraceTerminator(Opcode::Call));
  EXPECT_TRUE(isTraceTerminator(Opcode::Callr));
  EXPECT_TRUE(isTraceTerminator(Opcode::Ret));
  EXPECT_TRUE(isTraceTerminator(Opcode::Halt));
  EXPECT_TRUE(isTraceTerminator(Opcode::Sys));
  // Conditional branches do NOT end traces (Section 2.1).
  EXPECT_FALSE(isTraceTerminator(Opcode::Beq));
  EXPECT_FALSE(isTraceTerminator(Opcode::Bne));
  EXPECT_FALSE(isTraceTerminator(Opcode::Add));
  EXPECT_FALSE(isTraceTerminator(Opcode::Ld));
}

TEST(Opcode, ControlFlowClassification) {
  EXPECT_TRUE(isControlFlow(Opcode::Beq));
  EXPECT_TRUE(isControlFlow(Opcode::Ret));
  EXPECT_FALSE(isControlFlow(Opcode::Add));
  EXPECT_FALSE(isControlFlow(Opcode::St));
}

TEST(Opcode, CodeTargetClassification) {
  EXPECT_TRUE(hasCodeTarget(Opcode::Beq));
  EXPECT_TRUE(hasCodeTarget(Opcode::Jmp));
  EXPECT_TRUE(hasCodeTarget(Opcode::Call));
  EXPECT_FALSE(hasCodeTarget(Opcode::Jr));
  EXPECT_FALSE(hasCodeTarget(Opcode::Ret));
  EXPECT_FALSE(hasCodeTarget(Opcode::Ldi));
}

TEST(Opcode, MemoryClassification) {
  EXPECT_TRUE(isMemoryAccess(Opcode::Ld));
  EXPECT_TRUE(isMemoryAccess(Opcode::St));
  EXPECT_FALSE(isMemoryAccess(Opcode::Add));
}

TEST(Opcode, AllOpcodesNamed) {
  for (unsigned Op = 0; Op != static_cast<unsigned>(Opcode::NumOpcodes);
       ++Op)
    EXPECT_STRNE(opcodeName(static_cast<Opcode>(Op)), "invalid");
}

TEST(Instruction, EncodeDecodeRoundTripAllOpcodes) {
  for (unsigned Op = 0; Op != static_cast<unsigned>(Opcode::NumOpcodes);
       ++Op) {
    Instruction Inst;
    Inst.Op = static_cast<Opcode>(Op);
    Inst.Rd = 3;
    Inst.Rs1 = 7;
    Inst.Rs2 = 15;
    Inst.Imm = 0xdeadbeef;
    auto Bytes = Inst.encode();
    auto Back = Instruction::decode(Bytes.data());
    ASSERT_TRUE(Back.ok()) << opcodeName(Inst.Op);
    EXPECT_EQ(*Back, Inst);
  }
}

TEST(Instruction, DecodeRejectsBadOpcode) {
  uint8_t Bytes[InstructionSize] = {0xff, 0, 0, 0, 0, 0, 0, 0};
  auto Result = Instruction::decode(Bytes);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidFormat);
}

TEST(Instruction, DecodeRejectsBadRegister) {
  Instruction Inst = makeAlu(Opcode::Add, 1, 2, 3);
  auto Bytes = Inst.encode();
  Bytes[1] = 16; // Register out of range.
  auto Result = Instruction::decode(Bytes.data());
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidFormat);
}

TEST(Instruction, FactoriesProduceExpectedFields) {
  Instruction Add = makeAlu(Opcode::Add, 1, 2, 3);
  EXPECT_EQ(Add.Op, Opcode::Add);
  EXPECT_EQ(Add.Rd, 1);
  EXPECT_EQ(Add.Rs1, 2);
  EXPECT_EQ(Add.Rs2, 3);

  Instruction Addi = makeAluImm(Opcode::Addi, 4, 5, 100);
  EXPECT_EQ(Addi.Imm, 100u);

  Instruction Load = makeLoad(1, 2, -8);
  EXPECT_EQ(Load.Op, Opcode::Ld);
  EXPECT_EQ(static_cast<int32_t>(Load.Imm), -8);

  Instruction Store = makeStore(2, 4, 3);
  EXPECT_EQ(Store.Rs1, 2);
  EXPECT_EQ(Store.Rs2, 3);

  Instruction Branch = makeBranch(Opcode::Beq, 1, 2, 0x1000);
  EXPECT_EQ(Branch.codeTarget(), 0x1000u);

  Instruction Jump = makeJmp(0x2000);
  EXPECT_EQ(Jump.codeTarget(), 0x2000u);

  Instruction Syscall = makeSys(7);
  EXPECT_EQ(Syscall.Imm, 7u);
}

TEST(Instruction, DisassemblyMentionsOperands) {
  EXPECT_EQ(makeAlu(Opcode::Add, 1, 2, 3).toString(), "add r1, r2, r3");
  EXPECT_EQ(makeLdi(4, 0x10).toString(), "ldi r4, 0x10");
  EXPECT_EQ(makeLoad(1, 2, 8).toString(), "ld r1, [r2+8]");
  EXPECT_EQ(makeStore(2, -4, 3).toString(), "st [r2-4], r3");
  EXPECT_EQ(makeBranch(Opcode::Bne, 1, 2, 0x40).toString(),
            "bne r1, r2, 0x40");
  EXPECT_EQ(makeRet().toString(), "ret");
  EXPECT_EQ(makeHalt().toString(), "halt");
}

TEST(Instruction, EncodeAllDecodeAllRoundTrip) {
  std::vector<Instruction> Insts = {
      makeLdi(1, 42), makeAlu(Opcode::Add, 2, 1, 1),
      makeBranch(Opcode::Beq, 2, 1, 0x100), makeCall(0x200), makeRet(),
      makeHalt()};
  std::vector<uint8_t> Bytes = encodeAll(Insts);
  ASSERT_EQ(Bytes.size(), Insts.size() * InstructionSize);
  auto Back = decodeAll(Bytes.data(), Insts.size());
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(*Back, Insts);
}

TEST(Instruction, ImmEncodingIsLittleEndian) {
  Instruction Inst = makeLdi(1, 0x04030201);
  auto Bytes = Inst.encode();
  EXPECT_EQ(Bytes[4], 0x01);
  EXPECT_EQ(Bytes[5], 0x02);
  EXPECT_EQ(Bytes[6], 0x03);
  EXPECT_EQ(Bytes[7], 0x04);
}
