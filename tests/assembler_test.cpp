//===- tests/assembler_test.cpp - textual assembler tests -----------------===//

#include "binary/Assembler.h"
#include "vm/Machine.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::binary;
using namespace pcc::isa;

namespace {

/// Assembles, loads and runs an executable source natively.
vm::RunResult assembleAndRun(const std::string &Source,
                             loader::ModuleRegistry Registry =
                                 loader::ModuleRegistry()) {
  auto M = assemble(Source);
  EXPECT_TRUE(M.ok()) << (M.ok() ? "" : M.status().toString());
  if (!M.ok())
    return vm::RunResult();
  auto Machine = vm::Machine::create(
      std::make_shared<Module>(M.take()), Registry);
  EXPECT_TRUE(Machine.ok())
      << (Machine.ok() ? "" : Machine.status().toString());
  if (!Machine.ok())
    return vm::RunResult();
  return Machine->runNative();
}

} // namespace

TEST(Assembler, MinimalProgram) {
  auto R = assembleAndRun(R"(
    .module hello "/bin/hello"
    ldi r1, 7
    sys 1            ; exit(7)
  )");
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 7u);
}

TEST(Assembler, AllAluForms) {
  auto R = assembleAndRun(R"(
    ldi r1, 12
    ldi r2, 5
    add r3, r1, r2     ; 17
    sub r3, r3, r2     ; 12
    mul r3, r3, r2     ; 60
    divu r3, r3, r2    ; 12
    xor r3, r3, r1     ; 0
    ori r3, r3, 0x30   ; 48
    shri r3, r3, 4     ; 3
    addi r1, r3, 0     ; exit(3)
    sys 1
  )");
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 3u);
}

TEST(Assembler, LabelsAndControlFlow) {
  auto R = assembleAndRun(R"(
    ; sum 1..5 with a loop
      ldi r1, 5
      ldi r2, 0
      ldi r3, 0
    loop:
      add r2, r2, r1
      addi r1, r1, -1
      bne r1, r3, loop
      addi r1, r2, 0
      sys 1
  )");
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 15u);
}

TEST(Assembler, CallAndRet) {
  auto R = assembleAndRun(R"(
    .entry main
    double:              ; r1 = 2*r1
      add r1, r1, r1
      ret
    main:
      ldi r1, 21
      call double
      sys 1
  )");
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 42u);
}

TEST(Assembler, DataSectionAndAddressOf) {
  auto R = assembleAndRun(R"(
    .entry main
    .data
    counter: .word 40
    message: .byte 'h' 'i'
    .space 2
    table: .word @main
    .text
    main:
      ldi r4, @counter
      ld r1, [r4+0]
      addi r1, r1, 2
      st [r4+0], r1
      ld r1, [r4+0]     ; 42
      sys 1
  )");
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 42u);
}

TEST(Assembler, MemoryOperandOffsets) {
  auto R = assembleAndRun(R"(
    .entry main
    .data
    arr: .word 1 2 3 4
    .text
    main:
      ldi r4, @arr
      addi r4, r4, 8   ; &arr[2]
      ld r1, [r4-8]    ; arr[0] == 1
      ld r2, [r4+4]    ; arr[3] == 4
      add r1, r1, r2   ; 5
      sys 1
  )");
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 5u);
}

TEST(Assembler, LibraryImportThroughGot) {
  auto Lib = assemble(R"(
    .module mathlib.so "/lib/mathlib.so"
    .library
    .export square
    square:
      mul r1, r1, r1
      ret
  )");
  ASSERT_TRUE(Lib.ok()) << Lib.status().toString();
  EXPECT_FALSE(Lib->isExecutable());
  EXPECT_TRUE(Lib->findSymbol("square").has_value());

  loader::ModuleRegistry Registry;
  Registry.add(std::make_shared<Module>(Lib.take()));
  auto R = assembleAndRun(R"(
    .module app "/bin/app"
    .entry main
    .data
    .got sq "mathlib.so" "square"
    .text
    main:
      ldi r4, @sq
      ld r5, [r4+0]
      ldi r1, 6
      callr r5
      sys 1          ; exit(36)
  )",
                          std::move(Registry));
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 36u);
}

TEST(Assembler, CharLiteralsAndOutput) {
  auto R = assembleAndRun(R"(
    ldi r1, 'o'
    sys 2
    ldi r1, 'k'
    sys 2
    ldi r1, 0
    sys 1
  )");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, "ok");
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto bad = [](const std::string &Source) {
    auto M = assemble(Source);
    EXPECT_FALSE(M.ok());
    return M.ok() ? std::string() : M.status().toString();
  };
  EXPECT_NE(bad("frobnicate r1").find("line 1"), std::string::npos);
  EXPECT_NE(bad("\nadd r1, r2").find("line 2"), std::string::npos);
  EXPECT_NE(bad("add r1, r2, r99").find("register"),
            std::string::npos);
  EXPECT_NE(bad("jmp nowhere").find("undefined label"),
            std::string::npos);
  EXPECT_NE(bad("x: nop\nx: nop").find("duplicate label"),
            std::string::npos);
  EXPECT_NE(bad(".word 1").find(".word outside .data"),
            std::string::npos);
  EXPECT_NE(bad(".export ghost\nnop").find("cannot export"),
            std::string::npos);
}

TEST(Assembler, SerializedRoundTripPreservesBehavior) {
  auto M = assemble(R"(
    .module rt "/bin/rt"
    ldi r1, 9
    muli r1, r1, 3
    sys 1
  )");
  ASSERT_TRUE(M.ok());
  auto Bytes = M->serialize();
  auto Back = Module::deserialize(Bytes);
  ASSERT_TRUE(Back.ok());
  loader::ModuleRegistry Registry;
  auto Machine = vm::Machine::create(
      std::make_shared<Module>(Back.take()), Registry);
  ASSERT_TRUE(Machine.ok());
  auto R = Machine->runNative();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitCode, 27u);
}

TEST(Assembler, DisassemblerMentionsEverything) {
  auto M = assemble(R"(
    .module demo "/bin/demo"
    .entry main
    .export main
    .data
    .got slot "libx.so" "fn"
    .text
    main:
      ldi r4, @slot
      jmp main
  )");
  ASSERT_TRUE(M.ok()) << M.status().toString();
  std::string Text = disassembleModule(*M);
  EXPECT_NE(Text.find("module demo"), std::string::npos);
  EXPECT_NE(Text.find("import fn from libx.so"), std::string::npos);
  EXPECT_NE(Text.find("main:"), std::string::npos);
  EXPECT_NE(Text.find("ldi r4"), std::string::npos);
  EXPECT_NE(Text.find("; reloc"), std::string::npos);
}

TEST(Assembler, AssembledProgramsWorkUnderEngineAndPersistence) {
  auto M = assemble(R"(
    .module engine_demo "/bin/engine_demo"
    .entry main
    .data
    buf: .word 0
    .text
    tick:               ; r1 += 1, spins a short loop
      ldi r3, 10
      ldi r5, 0
    spin:
      addi r3, r3, -1
      bne r3, r5, spin
      addi r1, r1, 1
      ret
    main:
      ldi r1, 0
      call tick
      call tick
      call tick
      sys 1            ; exit(3)
  )");
  ASSERT_TRUE(M.ok()) << M.status().toString();
  auto App = std::make_shared<Module>(M.take());
  loader::ModuleRegistry Registry;

  tests::TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto run = [&] {
    auto Machine = vm::Machine::create(App, Registry);
    EXPECT_TRUE(Machine.ok());
    auto R = persist::runWithPersistence(*Machine, nullptr,
                                         dbi::EngineOptions(), Db);
    EXPECT_TRUE(R.ok());
    return R.take();
  };
  auto Cold = run();
  auto Warm = run();
  EXPECT_EQ(Cold.Run.ExitCode, 3u);
  EXPECT_EQ(Warm.Stats.TracesCompiled, 0u);
  EXPECT_TRUE(Cold.Run.observablyEquals(Warm.Run));
}
