//===- tests/cache_store_test.cpp - storage layer: backends + publish -----===//
//
// The transactional CacheStore layer: backend-agnostic contract tests
// run against both DirectoryStore and MemoryStore, the generation-
// conflict merge rule, crash-injected write failures, advisory locks,
// and genuinely concurrent finalizers (threads over the in-memory
// backend, processes over the directory backend).
//
//===----------------------------------------------------------------------===//

#include "dbi/CostModel.h"
#include "persist/CacheDatabase.h"
#include "persist/DirectoryStore.h"
#include "persist/MemoryStore.h"
#include "persist/Session.h"
#include "persist/TieredStore.h"
#include "support/FaultInjector.h"
#include "support/FileLock.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define PCC_TEST_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace pcc;
using namespace pcc::persist;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

/// A valid single-module cache whose traces start at the given guest
/// addresses.
CacheFile makeFileWithStarts(std::initializer_list<uint32_t> Starts,
                             uint32_t Generation = 1,
                             uint64_t ModuleFullHash = 0x1111) {
  CacheFile File;
  File.EngineHash = dbi::engineVersionHash();
  File.ToolHash = noToolHash();
  File.Generation = Generation;
  ModuleKey Key;
  Key.Path = "/bin/x";
  Key.Base = 0x400000;
  Key.Size = 0x10000;
  Key.FullHash = ModuleFullHash;
  File.Modules.push_back(Key);
  for (uint32_t Start : Starts) {
    TraceRecord Trace;
    Trace.GuestStart = Start;
    Trace.GuestInstCount = 4;
    Trace.Code.assign(64, static_cast<uint8_t>(Start & 0xff));
    File.Traces.push_back(std::move(Trace));
  }
  return File;
}

std::set<uint32_t> startsOf(const CacheFile &File) {
  std::set<uint32_t> Starts;
  for (const TraceRecord &Trace : File.Traces)
    Starts.insert(Trace.GuestStart);
  return Starts;
}

} // namespace

//===----------------------------------------------------------------------===//
// Backend-agnostic contract, run against every storage backend: the two
// flat stores and the tiered store over both L1 flavors (a shared
// in-memory L2 behind a directory or in-memory L1).
//===----------------------------------------------------------------------===//

class CacheStoreTest : public ::testing::TestWithParam<const char *> {
protected:
  std::shared_ptr<CacheStore> makeStore() {
    std::string Kind = GetParam();
    if (Kind == "dir")
      return std::make_shared<DirectoryStore>(Dir.path() + "/store");
    if (Kind == "mem")
      return std::make_shared<MemoryStore>();
    std::shared_ptr<CacheStore> L1;
    if (Kind == "tier-dir")
      L1 = std::make_shared<DirectoryStore>(Dir.path() + "/l1");
    else
      L1 = std::make_shared<MemoryStore>("<l1>");
    return std::make_shared<TieredStore>(
        std::move(L1), std::make_shared<MemoryStore>("<remote>"));
  }
  TempDir Dir;
};

INSTANTIATE_TEST_SUITE_P(Backends, CacheStoreTest,
                         ::testing::Values("dir", "mem", "tier-dir",
                                           "tier-mem"));

TEST_P(CacheStoreTest, PutOpenLoadRetireRoundtrip) {
  auto Store = makeStore();
  EXPECT_FALSE(Store->exists(7));
  ASSERT_TRUE(Store->put(7, makeFileWithStarts({0x400000, 0x400040},
                                               /*Generation=*/3))
                  .ok());
  EXPECT_TRUE(Store->exists(7));

  auto Opened = Store->openKey(7, CacheFileView::Depth::Index);
  ASSERT_TRUE(Opened.ok()) << Opened.status().toString();
  EXPECT_EQ(Opened->generation(), 3u);
  EXPECT_EQ(Opened->engineHash(), dbi::engineVersionHash());

  auto Loaded = Store->loadKey(7);
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->Traces.size(), 2u);

  ASSERT_TRUE(Store->retire(7).ok());
  EXPECT_FALSE(Store->exists(7));
  EXPECT_EQ(Store->loadKey(7).status().code(), ErrorCode::NotFound);
  EXPECT_EQ(Store->openKey(7, CacheFileView::Depth::Index).status().code(),
            ErrorCode::NotFound);
}

TEST_P(CacheStoreTest, PublishWithoutConflictStoresAsGiven) {
  auto Store = makeStore();
  auto First = Store->publish(9, makeFileWithStarts({0x400000}),
                              /*BaseGeneration=*/0);
  ASSERT_TRUE(First.ok()) << First.status().toString();
  EXPECT_FALSE(First->Merged);
  EXPECT_EQ(First->Generation, 1u);

  // The successor run primed from generation 1 and republishes: still
  // no conflict, caller's generation stands.
  auto Second =
      Store->publish(9, makeFileWithStarts({0x400000, 0x400040}, 2),
                     /*BaseGeneration=*/1);
  ASSERT_TRUE(Second.ok());
  EXPECT_FALSE(Second->Merged);
  EXPECT_EQ(Second->Generation, 2u);
  auto Loaded = Store->loadKey(9);
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->Generation, 2u);
  EXPECT_EQ(Loaded->Traces.size(), 2u);
}

TEST_P(CacheStoreTest, PublishConflictMergesBothWritersTraces) {
  auto Store = makeStore();
  // Writer A wins the slot.
  ASSERT_TRUE(
      Store->publish(5, makeFileWithStarts({0x400000, 0x400040}), 0)
          .ok());
  // Writer B — primed before A published (BaseGeneration 0) — brings
  // different traces. It must merge, not clobber.
  auto B = Store->publish(5, makeFileWithStarts({0x400080}), 0);
  ASSERT_TRUE(B.ok()) << B.status().toString();
  EXPECT_TRUE(B->Merged);
  EXPECT_EQ(B->Generation, 2u);

  auto Merged = Store->loadKey(5);
  ASSERT_TRUE(Merged.ok());
  EXPECT_EQ(Merged->Generation, 2u);
  EXPECT_EQ(startsOf(*Merged),
            (std::set<uint32_t>{0x400000, 0x400040, 0x400080}));
}

TEST_P(CacheStoreTest, PublishConflictDropsStaleWinnerModules) {
  auto Store = makeStore();
  // The winner persisted the module under a different key (stale
  // binary): its traces must not survive into the merge.
  ASSERT_TRUE(Store->publish(5,
                             makeFileWithStarts({0x400000}, 1,
                                                /*ModuleFullHash=*/0xAAAA),
                             0)
                  .ok());
  auto B = Store->publish(
      5, makeFileWithStarts({0x400080}, 1, /*ModuleFullHash=*/0xBBBB), 0);
  ASSERT_TRUE(B.ok());
  EXPECT_TRUE(B->Merged);

  auto Merged = Store->loadKey(5);
  ASSERT_TRUE(Merged.ok());
  EXPECT_EQ(startsOf(*Merged), (std::set<uint32_t>{0x400080}));
  ASSERT_EQ(Merged->Modules.size(), 1u);
  EXPECT_EQ(Merged->Modules[0].FullHash, 0xBBBBu);
}

TEST_P(CacheStoreTest, FindCompatibleFiltersOnBothHashes) {
  auto Store = makeStore();
  ASSERT_TRUE(Store->put(1, makeFileWithStarts({0x400000})).ok());
  CacheFile Alien = makeFileWithStarts({0x400000});
  Alien.EngineHash ^= 1;
  ASSERT_TRUE(Store->put(2, Alien).ok());

  auto Matches =
      Store->findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(Matches.ok());
  ASSERT_EQ(Matches->size(), 1u);
  EXPECT_EQ(Matches->front(), Store->refFor(1));
}

TEST_P(CacheStoreTest, StatsAndShrinkFollowGenerationPolicy) {
  auto Store = makeStore();
  ASSERT_TRUE(
      Store->put(1, makeFileWithStarts({0x400000, 0x400040}, 1)).ok());
  ASSERT_TRUE(Store->put(2, makeFileWithStarts({0x400080}, 5)).ok());

  auto Stats = Store->stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 2u);
  EXPECT_EQ(Stats->CorruptFiles, 0u);
  EXPECT_EQ(Stats->Traces, 3u);

  // Evicting down to one file's worth removes the lower generation.
  auto Removed = Store->shrinkTo(Stats->DiskBytes / 2);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 1u);
  EXPECT_FALSE(Store->exists(1));
  EXPECT_TRUE(Store->exists(2));

  ASSERT_TRUE(Store->clear().ok());
  auto After = Store->stats();
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(After->CacheFiles, 0u);
}

TEST_P(CacheStoreTest, ConcurrentPublishersAllSurvive) {
  auto Store = makeStore();
  // Four finalizers of one key, all primed empty, racing. Every
  // trace set must survive the pile-up regardless of ordering.
  constexpr unsigned NumWriters = 4;
  std::vector<std::thread> Writers;
  for (unsigned I = 0; I != NumWriters; ++I)
    Writers.emplace_back([&Store, I] {
      uint32_t Start = 0x400000 + I * 0x100;
      auto R = Store->publish(
          3, makeFileWithStarts({Start, Start + 0x40}), 0);
      ASSERT_TRUE(R.ok()) << R.status().toString();
    });
  for (std::thread &W : Writers)
    W.join();

  auto Final = Store->loadKey(3);
  ASSERT_TRUE(Final.ok()) << Final.status().toString();
  EXPECT_EQ(Final->Traces.size(), 2u * NumWriters);
  std::set<uint32_t> Expect;
  for (unsigned I = 0; I != NumWriters; ++I) {
    Expect.insert(0x400000 + I * 0x100);
    Expect.insert(0x400000 + I * 0x100 + 0x40);
  }
  EXPECT_EQ(startsOf(*Final), Expect);
}

//===----------------------------------------------------------------------===//
// Full sessions over both backends.
//===----------------------------------------------------------------------===//

TEST_P(CacheStoreTest, SessionWarmRunWorksOverEitherBackend) {
  TinyWorkload W = makeTinyWorkload(3, 2);
  CacheDatabase Db(makeStore());
  auto Input = W.allSlotsInput(2);

  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  EXPECT_FALSE(Cold->Prime.CacheFound);

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_GT(Warm->Prime.TracesInstalled, 0u);
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

TEST_P(CacheStoreTest, ConcurrentFinalizeMergesBothSessions) {
  // Two sessions of the same application prime before either
  // finalizes — the deterministic version of two processes racing.
  // Each runs a disjoint part of the workload; both finalize; the slot
  // must end up with the union.
  TinyWorkload W = makeTinyWorkload(4, 0);
  CacheDatabase Db(makeStore());
  auto InputA = W.input({{0, 2}, {1, 2}});
  auto InputB = W.input({{2, 2}, {3, 2}});

  auto MachineA = workloads::makeMachine(W.Registry, W.App, InputA);
  auto MachineB = workloads::makeMachine(W.Registry, W.App, InputB);
  ASSERT_TRUE(MachineA.ok());
  ASSERT_TRUE(MachineB.ok());
  dbi::Engine EngineA(*MachineA, nullptr, dbi::EngineOptions());
  dbi::Engine EngineB(*MachineB, nullptr, dbi::EngineOptions());
  PersistentSession SessionA(Db), SessionB(Db);

  auto PrimeA = SessionA.prime(EngineA);
  auto PrimeB = SessionB.prime(EngineB);
  ASSERT_TRUE(PrimeA.ok());
  ASSERT_TRUE(PrimeB.ok());
  EXPECT_FALSE(PrimeA->CacheFound);
  EXPECT_FALSE(PrimeB->CacheFound);
  ASSERT_EQ(SessionA.lookupKey(), SessionB.lookupKey());

  EngineA.run();
  EngineB.run();
  ASSERT_TRUE(SessionA.finalize(EngineA).ok());
  ASSERT_TRUE(SessionB.finalize(EngineB).ok());

  // The loser merged: generation 2, union of both sessions' traces.
  auto Merged = Db.load(SessionA.lookupKey());
  ASSERT_TRUE(Merged.ok()) << Merged.status().toString();
  EXPECT_EQ(Merged->Generation, 2u);

  // Replaying either input over the merged cache needs no translation.
  for (const auto *Input : {&InputA, &InputB}) {
    auto Replay =
        workloads::runPersistent(W.Registry, W.App, *Input, Db);
    ASSERT_TRUE(Replay.ok()) << Replay.status().toString();
    EXPECT_TRUE(Replay->Prime.CacheFound);
    EXPECT_EQ(Replay->Stats.TracesCompiled, 0u);
  }
}

//===----------------------------------------------------------------------===//
// TieredStore specifics: read-through, write-through, quarantine
// locality, the remote circuit breaker, and the L1 quota.
//===----------------------------------------------------------------------===//

namespace {

/// An in-memory L1 over an in-memory L2, with both tiers reachable.
struct TieredHarness {
  std::shared_ptr<MemoryStore> L1 =
      std::make_shared<MemoryStore>("<l1>");
  std::shared_ptr<MemoryStore> L2 =
      std::make_shared<MemoryStore>("<remote>");
  std::shared_ptr<TieredStore> Store;
  explicit TieredHarness(TieredOptions Opts = TieredOptions())
      : Store(std::make_shared<TieredStore>(L1, L2, Opts)) {}
};

} // namespace

TEST(TieredStoreTest, DefaultChargesMatchTheCostModel) {
  // TieredOptions defaults promise to mirror the engine cost model, so
  // a store built without one still charges honestly.
  dbi::CostModel Costs;
  TieredOptions Opts;
  EXPECT_EQ(Opts.RemoteFetchLatencyCycles, Costs.RemoteFetchLatencyCycles);
  EXPECT_EQ(Opts.RemoteFetchCyclesPerPage, Costs.RemoteFetchCyclesPerPage);
}

TEST(TieredStoreTest, ReadThroughFetchesFillsL1AndStampsTier) {
  TieredHarness H;
  // Published elsewhere in the fleet: only the shared tier has it.
  ASSERT_TRUE(H.L2->put(7, makeFileWithStarts({0x400000})).ok());
  EXPECT_TRUE(H.Store->exists(7));
  EXPECT_FALSE(H.L1->exists(7));

  auto First = H.Store->openKey(7, CacheFileView::Depth::Index);
  ASSERT_TRUE(First.ok()) << First.status().toString();
  EXPECT_EQ(First->Tier, CacheTier::L2);
  EXPECT_GT(First->RemoteFetchBytes, 0u);
  EXPECT_GE(First->RemoteFetchCycles,
            H.Store->options().RemoteFetchLatencyCycles);
  EXPECT_TRUE(H.L1->exists(7)); // Read-through filled the local tier.

  auto Second = H.Store->openKey(7, CacheFileView::Depth::Index);
  ASSERT_TRUE(Second.ok());
  EXPECT_EQ(Second->Tier, CacheTier::L1);
  EXPECT_EQ(Second->RemoteFetchBytes, 0u);

  // loadKey reads through the same way.
  ASSERT_TRUE(H.L2->put(9, makeFileWithStarts({0x400040})).ok());
  auto Loaded = H.Store->loadKey(9);
  ASSERT_TRUE(Loaded.ok()) << Loaded.status().toString();
  EXPECT_TRUE(H.L1->exists(9));

  auto Stats = H.Store->tieredStats();
  EXPECT_EQ(Stats.L1Hits, 1u);
  EXPECT_EQ(Stats.L2Hits, 2u);
  EXPECT_EQ(Stats.RemoteFetches, 2u);
  EXPECT_EQ(Stats.Misses, 0u);
  EXPECT_GT(Stats.ModeledRemoteCycles, 0u);
  EXPECT_FALSE(Stats.RemoteDisabled);

  // A key neither tier holds is a plain miss, not a failure.
  EXPECT_EQ(H.Store->openRef(H.Store->refFor(8), CacheFileView::Depth::Index)
                .status()
                .code(),
            ErrorCode::NotFound);
  EXPECT_EQ(H.Store->tieredStats().Misses, 1u);
  EXPECT_EQ(H.Store->tieredStats().RemoteFailures, 0u);
}

TEST(TieredStoreTest, WritesGoThroughToTheSharedTier) {
  TieredHarness H;
  ASSERT_TRUE(H.Store->put(4, makeFileWithStarts({0x400000})).ok());
  EXPECT_TRUE(H.L1->exists(4));
  EXPECT_TRUE(H.L2->exists(4));

  ASSERT_TRUE(H.Store->publish(5, makeFileWithStarts({0x400080}), 0).ok());
  EXPECT_TRUE(H.L1->exists(5));
  EXPECT_TRUE(H.L2->exists(5));

  auto Stats = H.Store->tieredStats();
  EXPECT_EQ(Stats.RemotePublishes, 2u);
  EXPECT_GT(Stats.RemotePublishBytes, 0u);

  // retire removes from both tiers.
  ASSERT_TRUE(H.Store->retire(4).ok());
  EXPECT_FALSE(H.L1->exists(4));
  EXPECT_FALSE(H.L2->exists(4));
}

TEST(TieredStoreTest, PublishConflictFillsTheMergeBackIntoL1) {
  // Two machines (private L1s, one shared L2) publish the same key:
  // the loser's merge must land in its own L1, and the winner's stale
  // copy refreshes through the normal read path once retired.
  auto L2 = std::make_shared<MemoryStore>("<remote>");
  TieredStore A(std::make_shared<MemoryStore>("<l1-a>"), L2);
  TieredStore B(std::make_shared<MemoryStore>("<l1-b>"), L2);

  ASSERT_TRUE(A.publish(5, makeFileWithStarts({0x400000}), 0).ok());
  auto R = B.publish(5, makeFileWithStarts({0x400080}), 0);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_TRUE(R->Merged);
  EXPECT_EQ(R->Generation, 2u);

  auto Local = B.l1().loadKey(5);
  ASSERT_TRUE(Local.ok());
  EXPECT_EQ(Local->Generation, 2u);
  EXPECT_EQ(startsOf(*Local), (std::set<uint32_t>{0x400000, 0x400080}));

  ASSERT_TRUE(A.l1().retire(5).ok());
  auto Refreshed = A.loadKey(5);
  ASSERT_TRUE(Refreshed.ok());
  EXPECT_EQ(Refreshed->Generation, 2u);
}

TEST(TieredStoreTest, FindCompatibleUnionsRemoteOnlyCandidates) {
  TieredHarness H;
  // One cache this machine already holds, one only the fleet has, and
  // one incompatible remote cache that must be filtered out.
  ASSERT_TRUE(H.Store->put(1, makeFileWithStarts({0x400000})).ok());
  ASSERT_TRUE(H.L2->put(2, makeFileWithStarts({0x400040})).ok());
  CacheFile Alien = makeFileWithStarts({0x400080});
  Alien.EngineHash ^= 1;
  ASSERT_TRUE(H.L2->put(3, Alien).ok());

  auto Matches =
      H.Store->findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(Matches.ok()) << Matches.status().toString();
  ASSERT_EQ(Matches->size(), 2u);
  // Local candidates lead (no fetch needed to try them), remote-only
  // ones follow — all refs in L1's namespace.
  EXPECT_EQ((*Matches)[0], H.Store->refFor(1));
  EXPECT_EQ((*Matches)[1], H.Store->refFor(2));

  auto Opened =
      H.Store->openRef((*Matches)[1], CacheFileView::Depth::Index);
  ASSERT_TRUE(Opened.ok()) << Opened.status().toString();
  EXPECT_EQ(Opened->Tier, CacheTier::L2);
  EXPECT_TRUE(H.L1->exists(2));
}

TEST(TieredStoreTest, QuarantineIsLocalAndRoundTrips) {
  TempDir Dir;
  auto L1 = std::make_shared<DirectoryStore>(Dir.path() + "/l1");
  auto L2 = std::make_shared<MemoryStore>("<remote>");
  TieredStore Store(L1, L2);
  ASSERT_TRUE(Store.put(3, makeFileWithStarts({0x400000})).ok());

  // Quarantine is this machine's judgment: the local copy moves aside,
  // the fleet's copy is not ours to condemn.
  ASSERT_TRUE(Store.quarantineRef(Store.refFor(3), "operator").ok());
  EXPECT_FALSE(L1->exists(3));
  EXPECT_TRUE(L2->exists(3));

  auto Q = Store.quarantined();
  ASSERT_TRUE(Q.ok());
  ASSERT_EQ(Q->size(), 1u);
  ASSERT_TRUE(Store.restoreQuarantined((*Q)[0].Name).ok());
  EXPECT_TRUE(L1->exists(3));
  auto Empty = Store.quarantined();
  ASSERT_TRUE(Empty.ok());
  EXPECT_TRUE(Empty->empty());

  ASSERT_TRUE(Store.quarantineRef(Store.refFor(3), "again").ok());
  auto Purged = Store.purgeQuarantine();
  ASSERT_TRUE(Purged.ok());
  EXPECT_EQ(*Purged, 1u);
  // Purged locally — but still only a remote fetch away.
  EXPECT_TRUE(Store.exists(3));
}

TEST(TieredStoreTest, CorruptL1SelfHealsFromRemote) {
  TempDir Dir;
  auto L1 = std::make_shared<DirectoryStore>(Dir.path() + "/l1");
  auto L2 = std::make_shared<MemoryStore>("<remote>");
  TieredStore Store(L1, L2);
  ASSERT_TRUE(Store.put(7, makeFileWithStarts({0x400000})).ok());

  // Trash the local copy on disk; the remote copy stays healthy.
  std::vector<uint8_t> Garbage(32, 0x5a);
  ASSERT_TRUE(writeFileAtomic(Store.refFor(7), Garbage).ok());

  // The open quarantines the bad local file and reads through.
  auto Opened = Store.openKey(7, CacheFileView::Depth::Index);
  ASSERT_TRUE(Opened.ok()) << Opened.status().toString();
  EXPECT_EQ(Opened->Tier, CacheTier::L2);
  auto Q = Store.quarantined();
  ASSERT_TRUE(Q.ok());
  EXPECT_EQ(Q->size(), 1u);

  // The refetched healthy copy serves locally from now on.
  auto Again = Store.openKey(7, CacheFileView::Depth::Index);
  ASSERT_TRUE(Again.ok()) << Again.status().toString();
  EXPECT_EQ(Again->Tier, CacheTier::L1);
}

TEST(TieredStoreTest, RemoteIoFailuresOpenTheBreakerAndDegrade) {
  TempDir Dir;
  // L1 in memory (immune to injected filesystem faults), L2 on disk so
  // the process-global injector only ever hits the remote tier.
  auto L1 = std::make_shared<MemoryStore>("<l1>");
  auto L2 = std::make_shared<DirectoryStore>(Dir.path() + "/l2");
  TieredOptions Opts;
  Opts.RemoteBreakerThreshold = 3;
  TieredStore Store(L1, L2, Opts);
  ASSERT_TRUE(L2->put(7, makeFileWithStarts({0x400000})).ok());

  FaultScope Faults;
  FaultInjector::instance().armCount(FaultOp::Read, 0, /*Times=*/1000);
  for (int I = 0; I != 3; ++I) {
    auto R = Store.openKey(7, CacheFileView::Depth::Index);
    ASSERT_FALSE(R.ok());
    EXPECT_EQ(R.status().code(), ErrorCode::IoError);
    EXPECT_EQ(Store.remoteDisabled(), I == 2) << "attempt " << I;
  }
  FaultInjector::instance().reset();

  // Breaker open: L1-only for the store's lifetime. The healthy remote
  // copy is invisible, but local work still lands (and stays local).
  EXPECT_FALSE(Store.exists(7));
  ASSERT_TRUE(Store.put(8, makeFileWithStarts({0x400040})).ok());
  EXPECT_TRUE(Store.exists(8));
  EXPECT_FALSE(L2->exists(8));
  auto Stats = Store.tieredStats();
  EXPECT_TRUE(Stats.RemoteDisabled);
  EXPECT_GE(Stats.RemoteFailures, 3u);
}

TEST(TieredStoreTest, SessionSurvivesRemoteOutage) {
  TinyWorkload W = makeTinyWorkload(3, 2);
  TempDir Dir;
  auto L1 = std::make_shared<MemoryStore>("<l1>");
  auto L2 = std::make_shared<DirectoryStore>(Dir.path() + "/l2");
  auto Store = std::make_shared<TieredStore>(L1, L2);
  CacheDatabase Db(Store);
  auto Input = W.allSlotsInput(2);

  // The remote tier is down for the whole cold run: every write-through
  // is absorbed, the run succeeds, the cache lands in L1 regardless.
  FaultScope Faults;
  FaultInjector::instance().armProbability(FaultOp::Enospc, 1.0);
  FaultInjector::instance().armProbability(FaultOp::Read, 1.0);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  FaultInjector::instance().reset();

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u);
  EXPECT_GT(Store->tieredStats().RemoteFailures, 0u);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

TEST(TieredStoreTest, L1QuotaEvictsColdestLowestHeatFirst) {
  uint64_t OneFile = makeFileWithStarts({0x400000}).serializedSize();
  TieredOptions Opts;
  Opts.L1QuotaBytes = 2 * OneFile + OneFile / 2;
  TieredHarness H(Opts);

  // Key 1 is the oldest but hot (its traces earned heat); key 2 is
  // younger but stone cold.
  CacheFile Hot = makeFileWithStarts({0x400000});
  Hot.Traces[0].Heat = 64;
  ASSERT_TRUE(H.Store->put(1, Hot).ok());
  ASSERT_TRUE(H.Store->put(2, makeFileWithStarts({0x400040})).ok());
  ASSERT_TRUE(H.Store->put(3, makeFileWithStarts({0x400080})).ok());

  // The quota holds two files: the cold key went, age notwithstanding.
  EXPECT_TRUE(H.L1->exists(1));
  EXPECT_FALSE(H.L1->exists(2));
  EXPECT_TRUE(H.L1->exists(3));
  EXPECT_GE(H.Store->tieredStats().L1Evictions, 1u);

  // Evicted, not gone: the shared tier still serves it.
  EXPECT_TRUE(H.Store->exists(2));
  auto Back = H.Store->openKey(2, CacheFileView::Depth::Index);
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back->Tier, CacheTier::L2);
}

TEST(TieredStoreTest, FinalizersOnDifferentMachinesMergeThroughL2) {
  // The fleet version of ConcurrentFinalizeMergesBothSessions: two
  // machines with private L1s finalize the same key through one shared
  // L2; a third, empty machine then warm-starts from the merge.
  TinyWorkload W = makeTinyWorkload(4, 0);
  auto L2 = std::make_shared<MemoryStore>("<remote>");
  auto storeFor = [&L2](const char *Label) {
    return std::make_shared<TieredStore>(
        std::make_shared<MemoryStore>(Label), L2);
  };
  CacheDatabase DbA(storeFor("<l1-a>")), DbB(storeFor("<l1-b>"));
  auto InputA = W.input({{0, 2}, {1, 2}});
  auto InputB = W.input({{2, 2}, {3, 2}});

  auto MachineA = workloads::makeMachine(W.Registry, W.App, InputA);
  auto MachineB = workloads::makeMachine(W.Registry, W.App, InputB);
  ASSERT_TRUE(MachineA.ok());
  ASSERT_TRUE(MachineB.ok());
  dbi::Engine EngineA(*MachineA, nullptr, dbi::EngineOptions());
  dbi::Engine EngineB(*MachineB, nullptr, dbi::EngineOptions());
  PersistentSession SessionA(DbA), SessionB(DbB);

  auto PrimeA = SessionA.prime(EngineA);
  auto PrimeB = SessionB.prime(EngineB);
  ASSERT_TRUE(PrimeA.ok());
  ASSERT_TRUE(PrimeB.ok());
  EXPECT_FALSE(PrimeA->CacheFound);
  EXPECT_FALSE(PrimeB->CacheFound);
  ASSERT_EQ(SessionA.lookupKey(), SessionB.lookupKey());

  EngineA.run();
  EngineB.run();
  ASSERT_TRUE(SessionA.finalize(EngineA).ok());
  ASSERT_TRUE(SessionB.finalize(EngineB).ok());

  // The loser merged in the shared tier.
  auto Merged = L2->loadKey(SessionA.lookupKey());
  ASSERT_TRUE(Merged.ok()) << Merged.status().toString();
  EXPECT_EQ(Merged->Generation, 2u);

  for (const auto *Input : {&InputA, &InputB}) {
    CacheDatabase DbC(storeFor("<l1-c>"));
    auto Replay = workloads::runPersistent(W.Registry, W.App, *Input, DbC);
    ASSERT_TRUE(Replay.ok()) << Replay.status().toString();
    EXPECT_TRUE(Replay->Prime.CacheFound);
    EXPECT_EQ(Replay->Stats.TracesCompiled, 0u);
    EXPECT_GT(Replay->Stats.PersistL2Hits, 0u);
  }
}

#if PCC_TEST_HAVE_FORK
TEST(TieredStoreFork, ProcessFinalizersMergeThroughSharedL2) {
  // Two processes, each its own "machine" (private in-memory L1), race
  // disjoint halves of one workload through a shared on-disk L2.
  TinyWorkload W = makeTinyWorkload(4, 0);
  TempDir Dir;
  std::string L2Path = Dir.path() + "/l2";
  auto InputA = W.input({{0, 2}, {1, 2}});
  auto InputB = W.input({{2, 2}, {3, 2}});

  std::vector<pid_t> Children;
  for (const auto *Input : {&InputA, &InputB}) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      auto Store = std::make_shared<TieredStore>(
          std::make_shared<MemoryStore>("<l1>"),
          std::make_shared<DirectoryStore>(L2Path));
      CacheDatabase Db(Store);
      auto R = workloads::runPersistent(W.Registry, W.App, *Input, Db);
      _exit(R.ok() ? 0 : 1);
    }
    Children.push_back(Pid);
  }
  for (pid_t Pid : Children) {
    int WStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    ASSERT_TRUE(WIFEXITED(WStatus));
    EXPECT_EQ(WEXITSTATUS(WStatus), 0);
  }

  // The shared tier holds the merged union and stayed clean.
  DirectoryStore L2(L2Path);
  auto Stats = L2.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 1u);
  EXPECT_EQ(Stats->CorruptFiles, 0u);
  auto Names = listDirectory(L2Path);
  ASSERT_TRUE(Names.ok());
  for (const std::string &Name : *Names)
    EXPECT_FALSE(isAtomicTempName(Name)) << Name;

  // A fresh machine warm-starts from the union, whichever input.
  for (const auto *Input : {&InputA, &InputB}) {
    auto Store = std::make_shared<TieredStore>(
        std::make_shared<MemoryStore>("<fresh>"),
        std::make_shared<DirectoryStore>(L2Path));
    CacheDatabase Db(Store);
    auto Replay = workloads::runPersistent(W.Registry, W.App, *Input, Db);
    ASSERT_TRUE(Replay.ok()) << Replay.status().toString();
    EXPECT_TRUE(Replay->Prime.CacheFound);
    EXPECT_EQ(Replay->Stats.TracesCompiled, 0u);
  }
}
#endif // PCC_TEST_HAVE_FORK

//===----------------------------------------------------------------------===//
// Directory-backend specifics: crash injection, locks, processes.
//===----------------------------------------------------------------------===//

TEST(DirectoryStoreCrash, FailedWriteLeavesSlotIntactAndNoTemp) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  ASSERT_TRUE(Store.put(4, makeFileWithStarts({0x400000})).ok());

  FaultScope Faults;
  FaultInjector::instance().armCount(FaultOp::ShortWrite);
  EXPECT_FALSE(
      Store.put(4, makeFileWithStarts({0x400000, 0x400040}, 2)).ok());

  // The slot still holds the previous cache and no temporary survived.
  auto Loaded = Store.loadKey(4);
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->Generation, 1u);
  EXPECT_EQ(Loaded->Traces.size(), 1u);
  auto Names = listDirectory(Dir.path());
  ASSERT_TRUE(Names.ok());
  for (const std::string &Name : *Names)
    EXPECT_FALSE(isAtomicTempName(Name)) << Name;
}

TEST(DirectoryStoreCrash, CrashMidWriteLeavesDirectoryScannable) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  ASSERT_TRUE(Store.put(4, makeFileWithStarts({0x400000})).ok());

  // Die halfway through writing the replacement: the orphaned
  // temporary must be invisible to every read path.
  FaultScope Faults;
  FaultInjector::instance().armCount(FaultOp::TornWrite);
  EXPECT_FALSE(
      Store.put(4, makeFileWithStarts({0x400000, 0x400040}, 2)).ok());

  auto Names = listDirectory(Dir.path());
  ASSERT_TRUE(Names.ok());
  unsigned Temps = 0;
  for (const std::string &Name : *Names)
    Temps += isAtomicTempName(Name) ? 1 : 0;
  EXPECT_EQ(Temps, 1u);

  auto Stats = Store.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 1u);
  EXPECT_EQ(Stats->CorruptFiles, 0u);
  auto Loaded = Store.loadKey(4);
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->Generation, 1u);

  // Maintenance sweeps the orphan without touching live caches.
  auto Removed = Store.shrinkTo(UINT64_MAX);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 0u);
  Names = listDirectory(Dir.path());
  ASSERT_TRUE(Names.ok());
  for (const std::string &Name : *Names)
    EXPECT_FALSE(isAtomicTempName(Name)) << Name;
  EXPECT_TRUE(Store.exists(4));
}

TEST(DirectoryStoreCrash, CrashDuringSessionFinalizePreservesPriorCache) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  // Every write-back attempt of the second run dies mid-stream. The
  // run itself still succeeds — persistence degrades, never the guest —
  // and the database keeps serving generation 1.
  FaultScope Faults;
  FaultInjector::instance().armCount(FaultOp::TornWrite, 0,
                                     /*Times=*/100);
  auto Crashed = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Crashed.ok()) << Crashed.status().toString();
  EXPECT_NE(Crashed->Stats.PersistStoreFailures, 0u);
  FaultInjector::instance().reset();

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

TEST(DirectoryStoreCrash, TransientCrashIsRetriedAndPublishSucceeds) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);

  // Exactly one torn write: the cold run's first publish attempt dies,
  // the retry lands, and the database ends up warm as if nothing
  // happened.
  FaultScope Faults;
  FaultInjector::instance().armCount(FaultOp::TornWrite);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  EXPECT_NE(Cold->Stats.PersistStoreRetries, 0u);

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u);
}

TEST(DirectoryStoreLocks, LocksAreCreatedByPublishAndReported) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  EXPECT_TRUE(Store.locks().empty());
  ASSERT_TRUE(Store.publish(6, makeFileWithStarts({0x400000}), 0).ok());

  auto Infos = Store.locks();
  ASSERT_EQ(Infos.size(), 2u); // store.lock + one per-key lock.
  for (const LockInfo &Info : Infos)
    EXPECT_FALSE(Info.Held) << Info.Path;

  // Lock files stay out of the cache directory proper: a legacy scan
  // over the store sees nothing but .pcc files.
  auto Names = listDirectory(Dir.path());
  ASSERT_TRUE(Names.ok());
  EXPECT_EQ(Names->size(), 1u);

  // While someone holds the store lock exclusively, the report says so.
  auto Held = FileLock::acquire(Dir.path() + "/.locks/store.lock");
  ASSERT_TRUE(Held.ok());
  unsigned HeldCount = 0;
  for (const LockInfo &Info : Store.locks())
    HeldCount += Info.Held ? 1 : 0;
  EXPECT_EQ(HeldCount, 1u);
}

TEST(DirectoryStoreLocks, ClearKeepsLockFilesButRemovesCaches) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  ASSERT_TRUE(Store.publish(6, makeFileWithStarts({0x400000}), 0).ok());
  ASSERT_TRUE(Store.clear().ok());
  EXPECT_FALSE(Store.exists(6));
  EXPECT_EQ(Store.locks().size(), 2u);
}

TEST(FileLockTest, ExclusiveConflictsAndWouldBlock) {
  TempDir Dir;
  std::string Path = Dir.path() + "/x.lock";
  auto First = FileLock::acquire(Path);
  ASSERT_TRUE(First.ok());
  EXPECT_TRUE(First->held());

  auto Second = FileLock::tryAcquire(Path);
#if PCC_TEST_HAVE_FORK
  // flock conflicts are per open-file-description, so a second open in
  // the same process contends like another process would.
  EXPECT_FALSE(Second.ok());
  EXPECT_EQ(Second.status().code(), ErrorCode::WouldBlock);
  EXPECT_TRUE(isFileLockHeld(Path));
#endif

  First->release();
  auto Third = FileLock::tryAcquire(Path);
  EXPECT_TRUE(Third.ok());
}

TEST(FileLockTest, SharedAdmitsSharedButNotExclusive) {
#if PCC_TEST_HAVE_FORK
  TempDir Dir;
  std::string Path = Dir.path() + "/x.lock";
  auto A = FileLock::acquire(Path, FileLock::Mode::Shared);
  ASSERT_TRUE(A.ok());
  auto B = FileLock::tryAcquire(Path, FileLock::Mode::Shared);
  EXPECT_TRUE(B.ok());
  auto C = FileLock::tryAcquire(Path, FileLock::Mode::Exclusive);
  EXPECT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), ErrorCode::WouldBlock);
#endif
}

TEST(WriterTagTest, RoundTripsThroughV2HeaderAndView) {
  CacheFile File = makeFileWithStarts({0x400000});
  File.WriterTag = 0xBEEF;
  auto View = CacheFileView::open(File.serialize());
  ASSERT_TRUE(View.ok());
  EXPECT_EQ(View->writerTag(), 0xBEEFu);
  auto Back = CacheFile::deserialize(File.serialize());
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back->WriterTag, 0xBEEFu);

  // Legacy files have no tag slot: it reads back untagged.
  auto Legacy = CacheFile::deserialize(File.serializeLegacy());
  ASSERT_TRUE(Legacy.ok());
  EXPECT_EQ(Legacy->WriterTag, 0u);
}

TEST(WriterTagTest, FinalizeTagsTheCacheWithThisProcess) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto R = workloads::runPersistent(W.Registry, W.App,
                                    W.allSlotsInput(2), Db);
  ASSERT_TRUE(R.ok());

  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  std::string CachePath;
  for (const std::string &Name : *Files)
    if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".pcc")
      CachePath = Dir.path() + "/" + Name;
  ASSERT_FALSE(CachePath.empty());
  auto View = CacheFileView::openFile(CachePath,
                                      CacheFileView::Depth::HeaderOnly);
  ASSERT_TRUE(View.ok());
  EXPECT_EQ(View->writerTag(),
            static_cast<uint16_t>(currentProcessId() & 0xffff));
}

#if PCC_TEST_HAVE_FORK
TEST(DirectoryStoreFork, ConcurrentProcessFinalizersMerge) {
  // The real thing: two processes run the same application against the
  // same database directory at the same time, each exercising a
  // disjoint part of it. Whatever the interleaving, both sets of
  // translations must survive and the directory must stay clean.
  TinyWorkload W = makeTinyWorkload(4, 0);
  TempDir Dir;
  auto InputA = W.input({{0, 2}, {1, 2}});
  auto InputB = W.input({{2, 2}, {3, 2}});

  std::vector<pid_t> Children;
  for (const auto *Input : {&InputA, &InputB}) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      CacheDatabase Db(Dir.path());
      auto R =
          workloads::runPersistent(W.Registry, W.App, *Input, Db);
      _exit(R.ok() ? 0 : 1);
    }
    Children.push_back(Pid);
  }
  for (pid_t Pid : Children) {
    int WStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    ASSERT_TRUE(WIFEXITED(WStatus));
    EXPECT_EQ(WEXITSTATUS(WStatus), 0);
  }

  CacheDatabase Db(Dir.path());
  auto Stats = Db.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 1u);
  EXPECT_EQ(Stats->CorruptFiles, 0u);
  auto Names = listDirectory(Dir.path());
  ASSERT_TRUE(Names.ok());
  for (const std::string &Name : *Names)
    EXPECT_FALSE(isAtomicTempName(Name)) << Name;

  // Whichever way the race went, exactly two finalizes advanced the
  // slot to generation 2...
  auto Files = Db.findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(Files.ok());
  ASSERT_EQ(Files->size(), 1u);
  auto Final = Db.loadPath(Files->front());
  ASSERT_TRUE(Final.ok());
  EXPECT_EQ(Final->Generation, 2u);

  // ...and the union serves both inputs translation-free.
  for (const auto *Input : {&InputA, &InputB}) {
    auto Replay =
        workloads::runPersistent(W.Registry, W.App, *Input, Db);
    ASSERT_TRUE(Replay.ok()) << Replay.status().toString();
    EXPECT_TRUE(Replay->Prime.CacheFound);
    EXPECT_EQ(Replay->Stats.TracesCompiled, 0u);
  }
}
#endif // PCC_TEST_HAVE_FORK
