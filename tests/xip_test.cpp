//===- tests/xip_test.cpp - execute-in-place sharing suite ----------------===//
//
// The execute-in-place (XIP) prime path: format v3 payloads mapped
// directly as executable trace bodies. Covers the contract the design
// leans on:
//
//   * EngineStats bit-identity between the XIP and materializing
//     consume paths (same payload, zero copies vs. decode+copy),
//   * eviction and flush release the borrowed mapping (unmap, never
//     free) and survivors disown their bodies into owned storage,
//   * a payload CRC failure in a mapped body falls back to
//     retranslation exactly like the materializing path,
//   * cross-process sharing: one physical copy per library cache,
//     later processes paying soft faults instead of demand-paged I/O,
//     including concurrent sessions with concurrent finalize,
//   * v2 -> v3 migration round-trip, carrying trace heat forward.
//
// Built as its own CTest executable (xip_test) so the XIP soak leg of
// scripts/check.sh can run exactly this binary under ASan/TSan; its
// tests register in the default ctest tier like any other.
//
//===----------------------------------------------------------------------===//

#include "dbi/CodeCache.h"
#include "persist/CacheDatabase.h"
#include "persist/CacheView.h"
#include "persist/Residency.h"
#include "persist/Session.h"
#include "support/FileSystem.h"
#include "workloads/Runner.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#define PCC_XIP_HAVE_FORK 1
#else
#define PCC_XIP_HAVE_FORK 0
#endif

using namespace pcc;
using namespace pcc::persist;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

/// Every scalar field plus the compile-event timeline: the XIP/
/// materializing contract is bit-identity, not approximate agreement.
/// Includes PersistSharedPageHits — the one counter a residency probe
/// can move — precisely because both paths must move it identically.
void expectStatsEqual(const dbi::EngineStats &A, const dbi::EngineStats &B,
                      const std::string &Label) {
  EXPECT_EQ(A.CompileCycles, B.CompileCycles) << Label;
  EXPECT_EQ(A.DispatchCycles, B.DispatchCycles) << Label;
  EXPECT_EQ(A.LinkCycles, B.LinkCycles) << Label;
  EXPECT_EQ(A.IndirectCycles, B.IndirectCycles) << Label;
  EXPECT_EQ(A.ExecCycles, B.ExecCycles) << Label;
  EXPECT_EQ(A.ToolCycles, B.ToolCycles) << Label;
  EXPECT_EQ(A.EmulationCycles, B.EmulationCycles) << Label;
  EXPECT_EQ(A.PersistCycles, B.PersistCycles) << Label;
  EXPECT_EQ(A.EvictionCycles, B.EvictionCycles) << Label;
  EXPECT_EQ(A.GuestInstsExecuted, B.GuestInstsExecuted) << Label;
  EXPECT_EQ(A.SyscallCount, B.SyscallCount) << Label;
  EXPECT_EQ(A.TracesCompiled, B.TracesCompiled) << Label;
  EXPECT_EQ(A.TracesLoadedFromCache, B.TracesLoadedFromCache) << Label;
  EXPECT_EQ(A.TracesReused, B.TracesReused) << Label;
  EXPECT_EQ(A.TraceExecutions, B.TraceExecutions) << Label;
  EXPECT_EQ(A.LinksCreated, B.LinksCreated) << Label;
  EXPECT_EQ(A.CacheFlushes, B.CacheFlushes) << Label;
  EXPECT_EQ(A.TracesEvicted, B.TracesEvicted) << Label;
  EXPECT_EQ(A.ModulesInvalidated, B.ModulesInvalidated) << Label;
  EXPECT_EQ(A.TracePayloadsValidated, B.TracePayloadsValidated) << Label;
  EXPECT_EQ(A.TracesDroppedCorrupt, B.TracesDroppedCorrupt) << Label;
  EXPECT_EQ(A.PersistSharedPageHits, B.PersistSharedPageHits) << Label;
  EXPECT_EQ(A.TracesVerified, B.TracesVerified) << Label;
  EXPECT_EQ(A.VerifyFailures, B.VerifyFailures) << Label;
  EXPECT_EQ(A.FlagsElided, B.FlagsElided) << Label;
  EXPECT_EQ(A.PersistStoreFailures, B.PersistStoreFailures) << Label;
  EXPECT_EQ(A.PersistStoreRetries, B.PersistStoreRetries) << Label;
  EXPECT_EQ(A.PersistCandidatesSkippedIo, B.PersistCandidatesSkippedIo)
      << Label;
  EXPECT_EQ(A.PersistDegraded, B.PersistDegraded) << Label;
  EXPECT_EQ(A.PersistDegradeReason, B.PersistDegradeReason) << Label;
  ASSERT_EQ(A.Timeline.size(), B.Timeline.size()) << Label;
  for (size_t I = 0; I < A.Timeline.size(); ++I) {
    EXPECT_EQ(A.Timeline[I].GuestInstsExecuted,
              B.Timeline[I].GuestInstsExecuted)
        << Label << " timeline[" << I << "]";
    EXPECT_EQ(A.Timeline[I].TraceInsts, B.Timeline[I].TraceInsts)
        << Label << " timeline[" << I << "]";
  }
}

PersistOptions xipOptions() {
  PersistOptions Opts;
  Opts.PositionIndependent = true;
  Opts.ExecuteInPlace = true;
  return Opts;
}

/// Sum of the per-trace heat counters in the cache file at \p Path.
uint64_t totalHeat(const std::string &Path) {
  auto View = CacheFileView::openFile(Path, CacheFileView::Depth::Index);
  EXPECT_TRUE(View.ok()) << View.status().toString();
  uint64_t Sum = 0;
  for (uint32_t I = 0; I != View->numTraces(); ++I)
    Sum += View->entry(I).Heat;
  return Sum;
}

} // namespace

//===----------------------------------------------------------------------===//
// Stats bit-identity: mapped execution vs. materialized copies.
//===----------------------------------------------------------------------===//

TEST(Xip, WarmRunStatsBitIdenticalWithMaterializingPath) {
  TinyWorkload W = makeTinyWorkload(6, 3);
  auto Input = W.allSlotsInput(3);

  // Two databases primed by identical cold runs; one writes a v3 XIP
  // generation, the other the v2 materializing format. The consume
  // paths differ in mechanism only, never in modeled cost.
  TempDir XipDir, MatDir;
  CacheDatabase XipDb(XipDir.path()), MatDb(MatDir.path());
  PersistOptions XipOpts = xipOptions();
  PersistOptions MatOpts;
  MatOpts.PositionIndependent = true;

  auto ColdX =
      workloads::runPersistent(W.Registry, W.App, Input, XipDb, XipOpts);
  auto ColdM =
      workloads::runPersistent(W.Registry, W.App, Input, MatDb, MatOpts);
  ASSERT_TRUE(ColdX.ok()) << ColdX.status().toString();
  ASSERT_TRUE(ColdM.ok()) << ColdM.status().toString();

  // Warm consume only (no write-back: the contract under test is the
  // prime + run path; finalize costs differ trivially with file size).
  XipOpts.WriteBack = false;
  MatOpts.WriteBack = false;
  auto WarmX =
      workloads::runPersistent(W.Registry, W.App, Input, XipDb, XipOpts);
  auto WarmM =
      workloads::runPersistent(W.Registry, W.App, Input, MatDb, MatOpts);
  ASSERT_TRUE(WarmX.ok()) << WarmX.status().toString();
  ASSERT_TRUE(WarmM.ok()) << WarmM.status().toString();

  ASSERT_TRUE(WarmX->Prime.CacheFound);
  ASSERT_TRUE(WarmM->Prime.CacheFound);
  // The XIP prime borrows the mapping and copies nothing; the
  // materializing prime pays a copy for every installed trace.
  EXPECT_TRUE(WarmX->Prime.XipInstalled);
  EXPECT_EQ(WarmX->Prime.PayloadBytesCopied, 0u);
  EXPECT_FALSE(WarmM->Prime.XipInstalled);
  EXPECT_GT(WarmM->Prime.PayloadBytesCopied, 0u);
  EXPECT_EQ(WarmX->Prime.TracesInstalled, WarmM->Prime.TracesInstalled);
  EXPECT_EQ(WarmX->Prime.LinksRestored, WarmM->Prime.LinksRestored);

  EXPECT_TRUE(WarmX->Run.observablyEquals(WarmM->Run));
  EXPECT_TRUE(WarmX->Run.observablyEquals(ColdX->Run));
  expectStatsEqual(WarmX->Stats, WarmM->Stats, "xip-vs-materializing");
  EXPECT_GT(WarmX->Stats.TracesReused, 0u);
}

TEST(Xip, ValidateRunsFallBackToMaterializing) {
  // --validate sessions must decode private copies (the validator needs
  // a rebased body vector), so the XIP gate stands down; the run still
  // primes and verifies every trace.
  TinyWorkload W = makeTinyWorkload(4, 2);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Cold =
      workloads::runPersistent(W.Registry, W.App, Input, Db, xipOptions());
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();

  PersistOptions Opts = xipOptions();
  Opts.ValidateSemantic = true;
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_FALSE(Warm->Prime.XipInstalled);
  EXPECT_GT(Warm->Prime.PayloadBytesCopied, 0u);
  EXPECT_GT(Warm->Stats.TracesVerified, 0u);
  EXPECT_EQ(Warm->Stats.VerifyFailures, 0u);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

//===----------------------------------------------------------------------===//
// Borrowed-pool lifetime: eviction unmaps, never frees.
//===----------------------------------------------------------------------===//

TEST(Xip, FlushReleasesBorrowedMapping) {
  auto Buf = std::make_shared<std::vector<isa::Instruction>>(
      8, isa::makeNop());
  std::weak_ptr<std::vector<isa::Instruction>> Weak = Buf;
  const size_t Bytes = Buf->size() * sizeof(isa::Instruction);

  dbi::CodeCache Cache(1 << 20, 1 << 20);
  ASSERT_TRUE(Cache
                  .installBorrowedPool(
                      reinterpret_cast<const uint8_t *>(Buf->data()),
                      Bytes, std::shared_ptr<const void>(Buf))
                  .ok());
  EXPECT_EQ(Cache.borrowedCodeBytes(), Bytes);
  EXPECT_EQ(Cache.codeBytesUsed(), Bytes);

  // The cache's keepalive is now the only owner of the mapping.
  Buf.reset();
  EXPECT_FALSE(Weak.expired());

  Cache.flush();
  EXPECT_TRUE(Weak.expired()) << "flush must release the mapping";
  EXPECT_EQ(Cache.borrowedCodeBytes(), 0u);
  EXPECT_EQ(Cache.codeBytesUsed(), 0u);
}

TEST(Xip, EvictOldestDisownsSurvivorsAndReleasesMapping) {
  // Two traces living in a borrowed pool; evicting the older one must
  // copy the survivor into owned storage (disown) and release the
  // mapping — unmap, not free: the shared pages were never this
  // process's to deallocate.
  auto Buf = std::make_shared<std::vector<isa::Instruction>>();
  for (unsigned I = 0; I != 4; ++I)
    Buf->push_back(isa::makeLdi(1, 0x100 + I));
  for (unsigned I = 0; I != 4; ++I)
    Buf->push_back(isa::makeLdi(2, 0x200 + I));
  std::weak_ptr<std::vector<isa::Instruction>> Weak = Buf;
  const uint32_t TraceBytes = 4 * sizeof(isa::Instruction);
  const std::vector<isa::Instruction> SurvivorBody(Buf->begin() + 4,
                                                   Buf->end());

  dbi::CodeCache Cache(1 << 20, 1 << 20);
  ASSERT_TRUE(Cache
                  .installBorrowedPool(
                      reinterpret_cast<const uint8_t *>(Buf->data()),
                      2 * TraceBytes, std::shared_ptr<const void>(Buf))
                  .ok());

  std::vector<dbi::TraceExit> Exits(1);
  auto T0 = Cache.addTrace(std::make_unique<dbi::TranslatedTrace>(
      0x1000, 4, 0, TraceBytes, Exits, /*FromPersistentCache=*/true));
  auto T1 = Cache.addTrace(std::make_unique<dbi::TranslatedTrace>(
      0x2000, 4, TraceBytes, TraceBytes, Exits,
      /*FromPersistentCache=*/true));
  ASSERT_TRUE(T0.ok());
  ASSERT_TRUE(T1.ok());
  (*T0)->materializeBorrowed(Buf->data());
  (*T1)->materializeBorrowed(Buf->data() + 4);
  EXPECT_TRUE((*T1)->isBorrowed());
  Buf.reset();

  EXPECT_EQ(Cache.evictOldest(0.5), 1u);
  EXPECT_TRUE(Weak.expired()) << "eviction must release the mapping";
  EXPECT_EQ(Cache.borrowedCodeBytes(), 0u);

  EXPECT_EQ(Cache.lookup(0x1000), nullptr);
  dbi::TranslatedTrace *Survivor = Cache.lookup(0x2000);
  ASSERT_NE(Survivor, nullptr);
  EXPECT_FALSE(Survivor->isBorrowed())
      << "survivor must own its body after the mapping is gone";
  ASSERT_EQ(Survivor->body().size(), SurvivorBody.size());
  for (size_t I = 0; I != SurvivorBody.size(); ++I)
    EXPECT_EQ(Survivor->body()[I], SurvivorBody[I]) << "inst " << I;
  // Compaction reclaimed the evicted trace's bytes.
  EXPECT_EQ(Survivor->poolOffset(), 0u);
  EXPECT_EQ(Cache.codeBytesUsed(), TraceBytes);
}

//===----------------------------------------------------------------------===//
// Corruption: a mapped body that fails its CRC is retranslated.
//===----------------------------------------------------------------------===//

TEST(Xip, CorruptMappedPayloadFallsBackToRetranslation) {
  TinyWorkload W = makeTinyWorkload(4, 2);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  PersistOptions Opts = xipOptions();
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();

  // Locate the cache file and flip one byte inside the first trace's
  // code image. The trace index stays CRC-clean, so the prime still
  // installs everything execute-in-place; the damage is caught by the
  // per-trace CRC at first execution of the mapped body.
  Opts.WriteBack = false;
  auto Probe = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Probe.ok()) << Probe.status().toString();
  ASSERT_TRUE(Probe->Prime.CacheFound);
  const std::string Path = Probe->Prime.CachePath;

  auto View = CacheFileView::openFile(Path, CacheFileView::Depth::Index);
  ASSERT_TRUE(View.ok()) << View.status().toString();
  ASSERT_GT(View->numTraces(), 0u);
  const TraceIndexEntry &E = View->entry(0);
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok()) << Bytes.status().toString();
  (*Bytes)[View->payloadOffset() + E.CodeOffset + E.CodeSize / 2] ^= 0x40;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_TRUE(Warm->Prime.XipInstalled);
  EXPECT_GE(Warm->Stats.TracesDroppedCorrupt, 1u);
  EXPECT_GT(Warm->Stats.TracesCompiled, 0u)
      << "the dropped trace must be retranslated from guest memory";
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run))
      << "corruption must never change guest-visible behaviour";
}

//===----------------------------------------------------------------------===//
// Cross-process sharing: one physical copy per library cache.
//===----------------------------------------------------------------------===//

TEST(Xip, SecondSimulatedProcessPaysSoftFaultsNotIo) {
  TinyWorkload W = makeTinyWorkload(5, 3);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Cold =
      workloads::runPersistent(W.Registry, W.App, Input, Db, xipOptions());
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();

  SharedResidencyMap Residency;
  PersistOptions Opts = xipOptions();
  Opts.SharedResidency = &Residency;
  Opts.WriteBack = false; // Keep the generation (and payload id) stable.

  auto First = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(First.ok()) << First.status().toString();
  ASSERT_TRUE(First->Prime.XipInstalled);
  // The first process demand-pages every payload page from disk.
  EXPECT_EQ(First->Stats.PersistSharedPageHits, 0u);
  EXPECT_GT(Residency.residentPages(), 0u);

  auto Second = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Second.ok()) << Second.status().toString();
  ASSERT_TRUE(Second->Prime.XipInstalled);
  // Every page the second process touches is already resident in the
  // first: soft faults only, and a strictly cheaper run.
  EXPECT_GT(Second->Stats.PersistSharedPageHits, 0u);
  EXPECT_LT(Second->Stats.PersistCycles, First->Stats.PersistCycles);
  EXPECT_TRUE(First->Run.observablyEquals(Second->Run));
}

TEST(Xip, ConcurrentSessionsShareAndFinalizeConcurrently) {
  TinyWorkload W = makeTinyWorkload(4, 3);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Cold =
      workloads::runPersistent(W.Registry, W.App, Input, Db, xipOptions());
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();

  // Two simulated processes race: both prime from the shared mapping
  // and both finalize the same slot (the store's transactional publish
  // merges). The residency map is the cross-process page table.
  SharedResidencyMap Residency;
  PersistOptions Opts = xipOptions();
  Opts.SharedResidency = &Residency;

  ErrorOr<PersistentRunResult> Results[2] = {
      Status::error(ErrorCode::NotFound, "not run"),
      Status::error(ErrorCode::NotFound, "not run")};
  std::thread A([&] {
    Results[0] =
        workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  });
  std::thread B([&] {
    Results[1] =
        workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  });
  A.join();
  B.join();

  for (int I = 0; I != 2; ++I) {
    ASSERT_TRUE(Results[I].ok()) << Results[I].status().toString();
    EXPECT_TRUE(Results[I]->Prime.CacheFound);
    EXPECT_TRUE(Results[I]->Prime.XipInstalled);
    EXPECT_TRUE(Cold->Run.observablyEquals(Results[I]->Run));
  }
  EXPECT_GT(Residency.residentPages(), 0u);

  // The merged result of the concurrent finalizes is still a clean XIP
  // cache a later process primes in place.
  auto After =
      workloads::runPersistent(W.Registry, W.App, Input, Db, xipOptions());
  ASSERT_TRUE(After.ok()) << After.status().toString();
  EXPECT_TRUE(After->Prime.XipInstalled);
  EXPECT_TRUE(Cold->Run.observablyEquals(After->Run));
}

#if PCC_XIP_HAVE_FORK
TEST(Xip, ForkedProcessPrimesFromTheSameFile) {
  // Real multi-process check: a forked child and the parent prime the
  // same v3 file and both write back, exercising the file-locked
  // publish across actual processes.
  TinyWorkload W = makeTinyWorkload(4, 2);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Cold =
      workloads::runPersistent(W.Registry, W.App, Input, Db, xipOptions());
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();

  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    auto R =
        workloads::runPersistent(W.Registry, W.App, Input, Db, xipOptions());
    _exit(R.ok() && R->Prime.XipInstalled &&
                  Cold->Run.observablyEquals(R->Run)
              ? 0
              : 1);
  }
  auto Parent =
      workloads::runPersistent(W.Registry, W.App, Input, Db, xipOptions());
  int ChildStatus = -1;
  ASSERT_EQ(waitpid(Child, &ChildStatus, 0), Child);
  EXPECT_TRUE(WIFEXITED(ChildStatus) && WEXITSTATUS(ChildStatus) == 0)
      << "child prime/run failed";
  ASSERT_TRUE(Parent.ok()) << Parent.status().toString();
  EXPECT_TRUE(Parent->Prime.XipInstalled);
  EXPECT_TRUE(Cold->Run.observablyEquals(Parent->Run));
}
#endif

//===----------------------------------------------------------------------===//
// Migration: v2 -> v3 round-trip, heat carried forward.
//===----------------------------------------------------------------------===//

TEST(Xip, MigrationFromV2CarriesHeatForward) {
  TinyWorkload W = makeTinyWorkload(5, 2);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());

  // Generation 1: plain v2 (position-independent, not XIP).
  PersistOptions V2Opts;
  V2Opts.PositionIndependent = true;
  auto Gen1 = workloads::runPersistent(W.Registry, W.App, Input, Db, V2Opts);
  ASSERT_TRUE(Gen1.ok()) << Gen1.status().toString();

  // Generation 2: an XIP session consumes the v2 file (materializing —
  // there is nothing to map in place yet) and finalizes it as v3.
  PersistOptions Opts = xipOptions();
  auto Gen2 = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Gen2.ok()) << Gen2.status().toString();
  ASSERT_TRUE(Gen2->Prime.CacheFound);
  EXPECT_FALSE(Gen2->Prime.XipInstalled);
  EXPECT_GT(Gen2->Prime.PayloadBytesCopied, 0u);

  const std::string Path = Gen2->Prime.CachePath;
  {
    auto View = CacheFileView::openFile(Path, CacheFileView::Depth::Index);
    ASSERT_TRUE(View.ok()) << View.status().toString();
    EXPECT_EQ(View->formatVersion(), v2::XipVersion);
    EXPECT_TRUE(View->executeInPlace());
    EXPECT_EQ(View->payloadOffset() % v2::PayloadAlign, 0u)
        << "v3 payload must start on a page boundary";
  }
  const uint64_t HeatAfterGen2 = totalHeat(Path);
  EXPECT_GT(HeatAfterGen2, 0u)
      << "migration must carry the v2 generation's heat forward";

  // Generation 3: the migrated file primes execute-in-place, and heat
  // keeps accumulating across generations.
  auto Gen3 = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Gen3.ok()) << Gen3.status().toString();
  EXPECT_TRUE(Gen3->Prime.XipInstalled);
  EXPECT_EQ(Gen3->Prime.PayloadBytesCopied, 0u);
  EXPECT_TRUE(Gen1->Run.observablyEquals(Gen3->Run));
  EXPECT_GT(totalHeat(Path), HeatAfterGen2);
}
