//===- tests/replay_test.cpp - deterministic record/replay ----------------===//
//
// The record/replay suite: a recorded run's `.pcrr` log must re-drive
// the engine to bit-identical EngineStats, RunResult and final guest
// memory — across cold and warm caches, any persistence worker count,
// fault storms over many seeds, and every cache configuration (v2,
// opt-flags, XIP, PIC+ASLR, tiered). Tampered logs are rejected with
// the right error class, and replay-based differential verification
// proves the persistent cache invisible to guest semantics.
//
// Built as its own CTest executable (replay_test) so the --replay soak
// leg of scripts/check.sh can run exactly this binary under ASan and
// TSan.
//
//===----------------------------------------------------------------------===//

#include "persist/CacheDatabase.h"
#include "persist/DirectoryStore.h"
#include "persist/TieredStore.h"
#include "replay/Recorder.h"
#include "replay/Replay.h"
#include "support/FaultInjector.h"
#include "support/FileSystem.h"
#include "support/ThreadPool.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pcc;
using namespace pcc::replay;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

/// Records one run of \p W against \p Db.
ErrorOr<RecordedRun> record(const TinyWorkload &W,
                            const std::vector<uint8_t> &Input,
                            const persist::CacheDatabase &Db,
                            const persist::PersistOptions &POpts =
                                persist::PersistOptions(),
                            const RecordSpec &Spec = RecordSpec()) {
  return recordRun(W.Registry, W.App, Input, Db, POpts, Spec);
}

/// Replays \p Rec and expects a bit-identical outcome.
void expectCleanReplay(const RecordedRun &Rec,
                       const ReplayOptions &Opts = ReplayOptions()) {
  auto Out = replayRun(Rec, Opts);
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(compareToRecording(Rec, *Out), "");
}

/// Flips one byte at absolute \p Offset of the file at \p Path.
void flipByteAt(const std::string &Path, size_t Offset) {
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  ASSERT_GT(Bytes->size(), Offset);
  (*Bytes)[Offset] ^= 0xff;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());
}

/// Path of the single .pcc file in \p Dir.
std::string soleCachePath(const std::string &Dir) {
  auto Names = listDirectory(Dir);
  EXPECT_TRUE(Names.ok());
  std::string Found;
  if (Names)
    for (const std::string &Name : *Names)
      if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".pcc")
        Found = Dir + "/" + Name;
  EXPECT_FALSE(Found.empty());
  return Found;
}

} // namespace

//===----------------------------------------------------------------------===//
// The log format.
//===----------------------------------------------------------------------===//

TEST(ReplayLog, SerializeDeserializeRoundTrip) {
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(3, 2);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto Rec = record(W, W.allSlotsInput(2), Db);
  ASSERT_TRUE(Rec.ok()) << Rec.status().toString();

  auto Parsed = deserializeLog(serializeLog(*Rec));
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();
  EXPECT_EQ(Parsed->Config.ToolName, Rec->Config.ToolName);
  EXPECT_EQ(Parsed->Config.AslrSeed, Rec->Config.AslrSeed);
  EXPECT_EQ(Parsed->Modules, Rec->Modules);
  EXPECT_EQ(Parsed->Input, Rec->Input);
  EXPECT_EQ(Parsed->LoadBases, Rec->LoadBases);
  ASSERT_EQ(Parsed->Caches.size(), Rec->Caches.size());
  for (size_t I = 0; I != Rec->Caches.size(); ++I) {
    EXPECT_EQ(Parsed->Caches[I].RefName, Rec->Caches[I].RefName);
    EXPECT_EQ(Parsed->Caches[I].Bytes, Rec->Caches[I].Bytes);
    EXPECT_EQ(Parsed->Caches[I].Consumed, Rec->Caches[I].Consumed);
  }
  for (size_t Op = 0; Op != static_cast<size_t>(FaultOp::OpCount); ++Op)
    EXPECT_EQ(Parsed->FaultDecisions[Op], Rec->FaultDecisions[Op]);
  EXPECT_EQ(diffStats(Parsed->Stats, Rec->Stats), "");
  EXPECT_EQ(diffRunResult(Parsed->Run, Rec->Run), "");
  EXPECT_EQ(Parsed->MemoryDigest, Rec->MemoryDigest);
}

TEST(ReplayLog, TamperedLogsAreRejectedWithTheRightErrorClass) {
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto Rec = record(W, W.allSlotsInput(1), Db);
  ASSERT_TRUE(Rec.ok());
  std::vector<uint8_t> Good = serializeLog(*Rec);

  // Bad magic: not a .pcrr file at all.
  std::vector<uint8_t> Bad = Good;
  Bad[0] ^= 0xff;
  EXPECT_EQ(deserializeLog(Bad).status().code(),
            ErrorCode::InvalidFormat);

  // Newer/older log version: readable header, unsupported layout.
  Bad = Good;
  Bad[4] ^= 0x01; // Version field, little-endian low byte.
  EXPECT_EQ(deserializeLog(Bad).status().code(),
            ErrorCode::VersionMismatch);

  // A log recorded by a different engine build is not replayable here.
  Bad = Good;
  Bad[8] ^= 0xff; // Engine-version hash.
  EXPECT_EQ(deserializeLog(Bad).status().code(),
            ErrorCode::VersionMismatch);

  // Flipped body byte: the CRC catches it.
  Bad = Good;
  Bad[Bad.size() / 2] ^= 0xff;
  EXPECT_EQ(deserializeLog(Bad).status().code(),
            ErrorCode::InvalidFormat);

  // Truncation anywhere is InvalidFormat, never a crash.
  for (size_t Keep : {size_t(0), size_t(3), size_t(10), size_t(20),
                      Good.size() / 2, Good.size() - 1}) {
    std::vector<uint8_t> Cut(Good.begin(), Good.begin() + Keep);
    EXPECT_FALSE(deserializeLog(Cut).ok()) << "kept " << Keep;
  }

  // The untampered image still parses (the mutations above copied).
  EXPECT_TRUE(deserializeLog(Good).ok());
}

//===----------------------------------------------------------------------===//
// Bit-identical replay.
//===----------------------------------------------------------------------===//

TEST(Replay, ColdAndWarmRunsReplayBitIdentically) {
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(3, 2);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);

  // Cold: nothing in the store yet, the run translates and publishes.
  auto Cold = record(W, Input, Db);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  EXPECT_TRUE(Cold->Caches.empty());
  expectCleanReplay(*Cold);

  // Warm: the run consumes the cache the cold run wrote; the log
  // carries those bytes, so replay primes from the same cache.
  auto Warm = record(W, Input, Db);
  ASSERT_TRUE(Warm.ok());
  ASSERT_EQ(Warm->Caches.size(), 1u);
  EXPECT_TRUE(Warm->Caches[0].Consumed);
  EXPECT_NE(Warm->Stats.TracesLoadedFromCache, 0u);
  expectCleanReplay(*Warm);
}

TEST(Replay, AnyWorkerCountReplaysARecordedParallelRun) {
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(6, 0);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());

  // Record a warm run on four workers...
  support::ThreadPool Four(4);
  persist::PersistOptions POpts;
  POpts.Pool = &Four;
  auto Rec = record(W, Input, Db, POpts);
  ASSERT_TRUE(Rec.ok()) << Rec.status().toString();

  // ...and replay it synchronously and on sixteen: the PR 4 invariant
  // makes every leg bit-identical to the recording.
  expectCleanReplay(*Rec);
  support::ThreadPool Sixteen(16);
  ReplayOptions Wide;
  Wide.Pool = &Sixteen;
  expectCleanReplay(*Rec, Wide);
}

TEST(Replay, FaultStormsReplayAcrossTwentySeeds) {
  // Twenty independent storms: each seeds the probabilistic plan
  // differently and cycles the recording worker count through 0/4/16.
  // Whatever faults fire, the log captures the literal decision stream
  // and the replay (on a different worker count) must reproduce the
  // run bit for bit.
  TinyWorkload W = makeTinyWorkload(4, 0);
  support::ThreadPool Four(4), Sixteen(16);
  support::ThreadPool *Pools[3] = {nullptr, &Four, &Sixteen};
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    FaultScope Scope;
    TempDir Dir;
    persist::CacheDatabase Db(Dir.path());
    auto Input = W.allSlotsInput(2);
    // A fault-free cold run seeds the store so the stormed run has a
    // cache to consume (and to fail reading).
    ASSERT_TRUE(
        workloads::runPersistent(W.Registry, W.App, Input, Db).ok());

    ASSERT_TRUE(FaultInjector::instance()
                    .configureFromPlan(
                        "seed:" + std::to_string(Seed) +
                        ",enospc:0.2,fsync:0.2,lock:0.25,read:0.1")
                    .ok());
    persist::PersistOptions POpts;
    POpts.Pool = Pools[Seed % 3];
    auto Rec = record(W, Input, Db, POpts);
    ASSERT_TRUE(Rec.ok()) << Rec.status().toString();

    ReplayOptions Opts;
    Opts.Pool = Pools[(Seed + 1) % 3];
    expectCleanReplay(*Rec, Opts);
  }
}

//===----------------------------------------------------------------------===//
// Differential verification.
//===----------------------------------------------------------------------===//

TEST(ReplayDiff, PersistenceOnAndOffAgreeAcrossConfigurations) {
  struct Config {
    const char *Name;
    persist::PersistOptions POpts;
    RecordSpec Spec;
  };
  std::vector<Config> Configs;
  Configs.push_back({"v2", {}, {}});
  {
    Config C{"opt-flags", {}, {}};
    C.Spec.OptimizeFlags = true;
    Configs.push_back(C);
  }
  {
    Config C{"xip", {}, {}};
    C.POpts.ExecuteInPlace = true;
    C.POpts.PositionIndependent = true;
    Configs.push_back(C);
  }
  {
    Config C{"pic+aslr", {}, {}};
    C.POpts.PositionIndependent = true;
    C.Spec.Policy = loader::BasePolicy::Randomized;
    C.Spec.AslrSeed = 0xA51A;
    Configs.push_back(C);
  }

  TinyWorkload W = makeTinyWorkload(3, 2);
  for (const Config &C : Configs) {
    SCOPED_TRACE(C.Name);
    FaultScope Scope;
    TempDir Dir;
    persist::CacheDatabase Db(Dir.path());
    auto Input = W.allSlotsInput(2);
    dbi::EngineOptions EngineOpts;
    EngineOpts.OptimizeFlags = C.Spec.OptimizeFlags;
    // Warm the store under the same configuration, then record the
    // consuming run and run both differential legs on its log.
    ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App, Input, Db,
                                         C.POpts, nullptr, EngineOpts,
                                         C.Spec.Policy, C.Spec.AslrSeed)
                    .ok());
    auto Rec = record(W, Input, Db, C.POpts, C.Spec);
    ASSERT_TRUE(Rec.ok()) << Rec.status().toString();
    auto Verdict = replayDiff(*Rec);
    ASSERT_TRUE(Verdict.ok()) << Verdict.status().toString();
    EXPECT_EQ(*Verdict, "");
  }
}

TEST(ReplayDiff, TieredStoreRunsReplayWithTheRecordedShape) {
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir L1, L2;
  auto Tiered = std::make_shared<persist::TieredStore>(
      std::make_shared<persist::DirectoryStore>(L1.path()),
      std::make_shared<persist::DirectoryStore>(L2.path()));
  persist::CacheDatabase Db(Tiered);
  auto Input = W.allSlotsInput(2);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());
  // Drop the local copy: the recorded run must fetch from L2, and the
  // log must remember the tier so replay charges the same fetch.
  ASSERT_TRUE(std::make_shared<persist::DirectoryStore>(L1.path())
                  ->clear()
                  .ok());

  RecordSpec Spec;
  Spec.Tiered = true;
  auto Rec = record(W, Input, Db, persist::PersistOptions(), Spec);
  ASSERT_TRUE(Rec.ok()) << Rec.status().toString();
  ASSERT_FALSE(Rec->Caches.empty());
  bool SawL2Consume = false;
  for (const RecordedCache &C : Rec->Caches)
    if (C.Consumed &&
        static_cast<persist::CacheTier>(C.Tier) == persist::CacheTier::L2)
      SawL2Consume = true;
  EXPECT_TRUE(SawL2Consume);
  EXPECT_NE(Rec->Stats.PersistRemoteFetches, 0u);

  expectCleanReplay(*Rec);
  auto Verdict = replayDiff(*Rec);
  ASSERT_TRUE(Verdict.ok()) << Verdict.status().toString();
  EXPECT_EQ(*Verdict, "");
}

//===----------------------------------------------------------------------===//
// Quarantine evidence.
//===----------------------------------------------------------------------===//

TEST(ReplayQuarantine, RecordedQuarantineTravelsWithTheStoreAndReplays) {
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());
  flipByteAt(soleCachePath(Dir.path()), 10); // Header: InvalidFormat.

  RecordSpec Spec;
  Spec.LogName = "evidence.pcrr";
  auto Rec = record(W, Input, Db, persist::PersistOptions(), Spec);
  ASSERT_TRUE(Rec.ok()) << Rec.status().toString();
  ASSERT_EQ(Rec->Quarantines.size(), 1u);
  EXPECT_EQ(Rec->Quarantines[0].Code,
            static_cast<uint8_t>(
                persist::QuarantineReasonCode::InvalidFormat));

  // The quarantine entry names the recording, and the serialized log
  // was attached next to the quarantined cache.
  auto Entries = Db.quarantined();
  ASSERT_TRUE(Entries.ok());
  ASSERT_EQ(Entries->size(), 1u);
  EXPECT_EQ(Entries->front().ReplayLog, "evidence.pcrr");
  auto Attached = Db.backend()->readQuarantineAttachment("evidence.pcrr");
  ASSERT_TRUE(Attached.ok()) << Attached.status().toString();
  auto Parsed = deserializeLog(*Attached);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();

  // Replaying the attached evidence reproduces the identical verdict.
  auto Out = replayRun(*Parsed, ReplayOptions());
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(compareToRecording(*Parsed, *Out), "");
  ASSERT_EQ(Out->Quarantines.size(), 1u);
  EXPECT_EQ(Out->Quarantines[0].RefName, Rec->Quarantines[0].RefName);
  EXPECT_EQ(Out->Quarantines[0].Code, Rec->Quarantines[0].Code);
}
