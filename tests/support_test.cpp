//===- tests/support_test.cpp - support library unit tests ----------------===//

#include "support/ByteStream.h"
#include "support/Error.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;

TEST(Hashing, Fnv1aKnownValues) {
  // Reference values for the 64-bit FNV-1a algorithm.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hashing, Fnv1aChaining) {
  uint64_t Once = fnv1a64("hello world");
  uint64_t Chained = fnv1a64(" world", fnv1a64("hello"));
  EXPECT_EQ(Once, Chained);
}

TEST(Hashing, Fnv1aU64IsOrderSensitive) {
  uint64_t A = fnv1a64U64(2, fnv1a64U64(1, Fnv1a64Init));
  uint64_t B = fnv1a64U64(1, fnv1a64U64(2, Fnv1a64Init));
  EXPECT_NE(A, B);
}

TEST(Hashing, Crc32KnownValues) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926U);
  EXPECT_EQ(crc32("", 0), 0U);
}

TEST(Hashing, Crc32DetectsBitFlip) {
  std::vector<uint8_t> Data(1024);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I * 7);
  uint32_t Before = crc32(Data.data(), Data.size());
  Data[512] ^= 1;
  EXPECT_NE(Before, crc32(Data.data(), Data.size()));
}

namespace {

/// Textbook bytewise IEEE CRC-32 (reflected 0xedb88320), the loop the
/// production slice-by-8 implementation must stay bit-identical to.
uint32_t crc32Bytewise(const uint8_t *Data, size_t Size, uint32_t Seed) {
  uint32_t Crc = Seed ^ 0xffffffffU;
  for (size_t I = 0; I != Size; ++I) {
    Crc ^= Data[I];
    for (int Bit = 0; Bit != 8; ++Bit)
      Crc = (Crc >> 1) ^ (0xedb88320U & (0U - (Crc & 1)));
  }
  return Crc ^ 0xffffffffU;
}

} // namespace

TEST(Hashing, Crc32MatchesBytewiseReference) {
  // Sweep lengths around the slice-by-8 block boundary (0..64) plus
  // larger sizes, at every alignment of the buffer start.
  std::vector<uint8_t> Data(4096 + 8);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I * 131 + 17);
  for (size_t Offset = 0; Offset != 8; ++Offset) {
    for (size_t Size = 0; Size <= 64; ++Size)
      ASSERT_EQ(crc32(Data.data() + Offset, Size),
                crc32Bytewise(Data.data() + Offset, Size, 0))
          << "offset " << Offset << " size " << Size;
    ASSERT_EQ(crc32(Data.data() + Offset, 4096),
              crc32Bytewise(Data.data() + Offset, 4096, 0))
        << "offset " << Offset;
  }
}

TEST(Hashing, Crc32SeedChaining) {
  // Feeding a buffer in arbitrary splits through the seed parameter
  // must equal one pass over the whole buffer.
  std::vector<uint8_t> Data(777);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I ^ (I >> 3));
  uint32_t Whole = crc32(Data.data(), Data.size());
  for (size_t Split : {1u, 7u, 8u, 64u, 511u, 776u}) {
    uint32_t First = crc32(Data.data(), Split);
    EXPECT_EQ(crc32(Data.data() + Split, Data.size() - Split, First),
              Whole)
        << "split at " << Split;
  }
}

TEST(Hashing, HashCombineDistinguishesOrder) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
  EXPECT_NE(hashCombine(0, 0), 0u);
}

TEST(Error, SuccessStatus) {
  Status S = Status::success();
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Success);
  EXPECT_EQ(S.toString(), "success");
}

TEST(Error, ErrorStatusCarriesCodeAndMessage) {
  Status S = Status::error(ErrorCode::NotFound, "no such thing");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::NotFound);
  EXPECT_EQ(S.toString(), "not found: no such thing");
}

TEST(Error, ErrorOrValuePath) {
  ErrorOr<int> Value(7);
  ASSERT_TRUE(Value.ok());
  EXPECT_EQ(*Value, 7);
  EXPECT_EQ(Value.take(), 7);
}

TEST(Error, ErrorOrErrorPath) {
  ErrorOr<int> Err(Status::error(ErrorCode::IoError, "disk gone"));
  ASSERT_FALSE(Err.ok());
  EXPECT_EQ(Err.status().code(), ErrorCode::IoError);
}

TEST(Error, AllCodesHaveNames) {
  for (int Code = 0; Code <= static_cast<int>(ErrorCode::InvalidArgument);
       ++Code)
    EXPECT_STRNE(errorCodeName(static_cast<ErrorCode>(Code)), "unknown");
}

TEST(ByteStream, RoundTripScalars) {
  ByteWriter Writer;
  Writer.writeU8(0xab);
  Writer.writeU16(0x1234);
  Writer.writeU32(0xdeadbeef);
  Writer.writeU64(0x0123456789abcdefULL);
  Writer.writeI64(-42);

  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readU8(), 0xab);
  EXPECT_EQ(Reader.readU16(), 0x1234);
  EXPECT_EQ(Reader.readU32(), 0xdeadbeefU);
  EXPECT_EQ(Reader.readU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(Reader.readI64(), -42);
  EXPECT_TRUE(Reader.atEnd());
  EXPECT_FALSE(Reader.failed());
}

TEST(ByteStream, RoundTripStringsAndBlobs) {
  ByteWriter Writer;
  Writer.writeString("hello");
  Writer.writeString("");
  Writer.writeBlob({1, 2, 3});

  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readString(), "hello");
  EXPECT_EQ(Reader.readString(), "");
  EXPECT_EQ(Reader.readBlob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(Reader.atEnd());
}

TEST(ByteStream, OverflowPoisonsReader) {
  ByteWriter Writer;
  Writer.writeU16(7);
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readU32(), 0u); // Only 2 bytes available.
  EXPECT_TRUE(Reader.failed());
  // Poisoned reader keeps yielding zeros.
  EXPECT_EQ(Reader.readU64(), 0u);
  EXPECT_EQ(Reader.remaining(), 0u);
}

TEST(ByteStream, TruncatedStringFails) {
  ByteWriter Writer;
  Writer.writeU32(100); // Length prefix promising 100 bytes.
  Writer.writeU8('x');
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readString(), "");
  EXPECT_TRUE(Reader.failed());
}

TEST(ByteStream, PatchU32) {
  ByteWriter Writer;
  Writer.writeU32(0);
  Writer.writeU32(7);
  Writer.patchU32(0, 0xcafebabe);
  ByteReader Reader(Writer.bytes());
  EXPECT_EQ(Reader.readU32(), 0xcafebabeU);
  EXPECT_EQ(Reader.readU32(), 7u);
}

TEST(Random, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, BoundsRespected) {
  Rng Gen(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(Gen.nextBelow(10), 10u);
    uint64_t V = Gen.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = Gen.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
  EXPECT_EQ(Gen.nextBelow(1), 0u);
}

TEST(Random, RoughUniformity) {
  Rng Gen(99);
  std::vector<int> Buckets(8, 0);
  for (int I = 0; I != 8000; ++I)
    ++Buckets[Gen.nextBelow(8)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, 800);
    EXPECT_LT(Count, 1200);
  }
}

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("x=%d, s=%s", 42, "abc"), "x=42, s=abc");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(StringUtils, ToHex) {
  EXPECT_EQ(toHex(0, 8), "00000000");
  EXPECT_EQ(toHex(0xdeadbeef, 8), "deadbeef");
  EXPECT_EQ(toHex(0x1, 4), "0001");
  EXPECT_EQ(toHex(0x123456789ULL, 4), "123456789");
}

TEST(StringUtils, SplitString) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(StringUtils, FormatByteSize) {
  EXPECT_EQ(formatByteSize(512), "512 B");
  EXPECT_EQ(formatByteSize(2048), "2.0 KiB");
  EXPECT_EQ(formatByteSize(3u << 20), "3.0 MiB");
}

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter Table("demo");
  Table.addRow({"name", "value"});
  Table.addRow({"x", "1"});
  Table.addRow({"longer", "22"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("== demo =="), std::string::npos);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter Table;
  Table.addRow({"a", "b", "c"});
  Table.addRow({"only"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("only"), std::string::npos);
}

TEST(FileSystem, WriteReadRoundTrip) {
  tests::TempDir Dir;
  std::string Path = Dir.path() + "/file.bin";
  std::vector<uint8_t> Data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(writeFileAtomic(Path, Data).ok());
  auto Back = readFile(Path);
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(*Back, Data);
  EXPECT_TRUE(fileExists(Path));
}

TEST(FileSystem, ReadMissingFileFails) {
  tests::TempDir Dir;
  auto Result = readFile(Dir.path() + "/nope");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::IoError);
}

TEST(FileSystem, ListDirectorySorted) {
  tests::TempDir Dir;
  ASSERT_TRUE(writeFileAtomic(Dir.path() + "/b.txt", {1}).ok());
  ASSERT_TRUE(writeFileAtomic(Dir.path() + "/a.txt", {2}).ok());
  auto Names = listDirectory(Dir.path());
  ASSERT_TRUE(Names.ok());
  ASSERT_EQ(Names->size(), 2u);
  EXPECT_EQ((*Names)[0], "a.txt");
  EXPECT_EQ((*Names)[1], "b.txt");
}

TEST(FileSystem, RemoveFileIdempotent) {
  tests::TempDir Dir;
  std::string Path = Dir.path() + "/f";
  ASSERT_TRUE(writeFileAtomic(Path, {9}).ok());
  EXPECT_TRUE(removeFile(Path).ok());
  EXPECT_FALSE(fileExists(Path));
  EXPECT_TRUE(removeFile(Path).ok()); // Missing file is success.
}
