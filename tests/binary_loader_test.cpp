//===- tests/binary_loader_test.cpp - module format and loader tests ------===//

#include "binary/Module.h"
#include "loader/AddressSpace.h"
#include "loader/Loader.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::binary;
using namespace pcc::loader;
using namespace pcc::isa;

TEST(Module, SerializeDeserializeRoundTrip) {
  Module M("app", "/bin/app", ModuleKind::Executable);
  M.setInstructions({makeLdi(1, 7), makeCall(0x40), makeHalt()});
  M.setData({1, 2, 3, 4});
  M.setBssSize(128);
  M.setEntryOffset(8);
  M.addSymbol("start", 0);
  M.addImport("fn", "lib.so", 0);
  M.addTextRelocation(1);
  M.addDataRelocation(0);
  M.setModificationTime(99);

  auto Bytes = M.serialize();
  auto Back = Module::deserialize(Bytes);
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(*Back, M);
  EXPECT_EQ(Back->contentHash(), M.contentHash());
}

TEST(Module, DeserializeRejectsCorruption) {
  Module M("x", "/x", ModuleKind::SharedLibrary);
  M.setInstructions({makeHalt()});
  auto Bytes = M.serialize();
  Bytes[0] ^= 0xff; // Magic.
  EXPECT_FALSE(Module::deserialize(Bytes).ok());

  auto Truncated = M.serialize();
  Truncated.resize(Truncated.size() / 2);
  EXPECT_FALSE(Module::deserialize(Truncated).ok());
}

TEST(Module, HeaderHashChangesWithStructure) {
  Module A("app", "/bin/app", ModuleKind::Executable);
  A.setInstructions({makeHalt()});
  Module B = A;
  EXPECT_EQ(A.programHeaderHash(), B.programHeaderHash());
  B.setInstructions({makeHalt(), makeHalt()});
  EXPECT_NE(A.programHeaderHash(), B.programHeaderHash());
}

TEST(Module, TouchBumpsTimestamp) {
  Module M("app", "/bin/app", ModuleKind::Executable);
  uint64_t Before = M.modificationTime();
  M.touch();
  EXPECT_EQ(M.modificationTime(), Before + 1);
}

TEST(Module, LayoutComputations) {
  Module M("app", "/bin/app", ModuleKind::Executable);
  M.setInstructions(std::vector<Instruction>(100, makeNop()));
  M.setData(std::vector<uint8_t>(10, 0));
  M.setBssSize(20);
  EXPECT_EQ(M.textSize(), 800u);
  EXPECT_EQ(M.dataStart(), PageSize);
  EXPECT_EQ(M.imageSize(), alignToPage(PageSize + 30));
}

TEST(Module, FindSymbol) {
  Module M("lib", "/lib", ModuleKind::SharedLibrary);
  M.addSymbol("a", 0);
  M.addSymbol("b", 16);
  EXPECT_EQ(M.findSymbol("b").value(), 16u);
  EXPECT_FALSE(M.findSymbol("c").has_value());
}

TEST(Module, DependencyNamesDeduplicated) {
  Module M("app", "/app", ModuleKind::Executable);
  M.addImport("f", "libA.so", 0);
  M.addImport("g", "libB.so", 4);
  M.addImport("h", "libA.so", 8);
  auto Deps = M.dependencyNames();
  ASSERT_EQ(Deps.size(), 2u);
  EXPECT_EQ(Deps[0], "libA.so");
  EXPECT_EQ(Deps[1], "libB.so");
}

TEST(AddressSpace, MapAndAccess) {
  AddressSpace Space;
  ASSERT_TRUE(Space.mapRegion(0x1000, 100).ok());
  EXPECT_TRUE(Space.isMapped(0x1000));
  EXPECT_TRUE(Space.isMapped(0x1fff)); // Page-granular mapping.
  EXPECT_FALSE(Space.isMapped(0x2000));

  ASSERT_TRUE(Space.write32(0x1000, 0x11223344).ok());
  auto V = Space.read32(0x1000);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 0x11223344u);
}

TEST(AddressSpace, CrossPageAccess) {
  AddressSpace Space;
  ASSERT_TRUE(Space.mapRegion(0x1000, 2 * PageSize).ok());
  uint32_t Addr = 0x1000 + PageSize - 2;
  ASSERT_TRUE(Space.write32(Addr, 0xaabbccdd).ok());
  auto V = Space.read32(Addr);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 0xaabbccddU);
}

TEST(AddressSpace, DoubleMapFails) {
  AddressSpace Space;
  ASSERT_TRUE(Space.mapRegion(0x1000, PageSize).ok());
  EXPECT_FALSE(Space.mapRegion(0x1000, PageSize).ok());
  EXPECT_FALSE(Space.mapRegion(0x1800, PageSize).ok()); // Overlap.
}

TEST(AddressSpace, UnmappedAccessFaults) {
  AddressSpace Space;
  EXPECT_FALSE(Space.read32(0x5000).ok());
  EXPECT_FALSE(Space.write8(0x5000, 1).ok());
  uint8_t Buf[8];
  EXPECT_FALSE(Space.fetchInstructionBytes(0x5000, Buf).ok());
}

TEST(AddressSpace, BulkReadWrite) {
  AddressSpace Space;
  ASSERT_TRUE(Space.mapRegion(0x1000, 3 * PageSize).ok());
  std::vector<uint8_t> Data(2 * PageSize + 7);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I);
  ASSERT_TRUE(Space.writeBytes(0x1003, Data.data(),
                               static_cast<uint32_t>(Data.size()))
                  .ok());
  std::vector<uint8_t> Back(Data.size());
  ASSERT_TRUE(Space.readBytes(0x1003, Back.data(),
                              static_cast<uint32_t>(Back.size()))
                  .ok());
  EXPECT_EQ(Back, Data);
}

TEST(Loader, LoadsAppAndDependencies) {
  tests::TinyWorkload W = tests::makeTinyWorkload(2, 2);
  AddressSpace Space;
  Loader L(Space, W.Registry);
  auto Image = L.load(W.App);
  ASSERT_TRUE(Image.ok()) << Image.status().toString();
  ASSERT_EQ(Image->Modules.size(), 2u); // App + libtest.so.
  EXPECT_EQ(Image->Modules[0].Base, Loader::ExecutableBase);
  EXPECT_EQ(Image->EntryAddress, Loader::ExecutableBase);
  EXPECT_TRUE(Space.isMapped(Image->Modules[1].Base));
  EXPECT_NE(Image->findByName("libtest.so"), nullptr);
  EXPECT_EQ(Image->findByName("nope"), nullptr);
  EXPECT_EQ(Image->findByAddress(Loader::ExecutableBase),
            &Image->Modules[0]);
}

TEST(Loader, ImportResolution) {
  tests::TinyWorkload W = tests::makeTinyWorkload(1, 2);
  AddressSpace Space;
  Loader L(Space, W.Registry);
  auto Image = L.load(W.App);
  ASSERT_TRUE(Image.ok());
  const LoadedModule &App = Image->Modules[0];
  const LoadedModule *Lib = Image->findByName("libtest.so");
  ASSERT_NE(Lib, nullptr);
  // GOT slot 0 holds the address of libfn0.
  auto Slot = Space.read32(App.dataBase() + 0);
  ASSERT_TRUE(Slot.ok());
  auto Offset = Lib->Image->findSymbol("libfn0");
  ASSERT_TRUE(Offset.has_value());
  EXPECT_EQ(*Slot, Lib->Base + *Offset);
}

TEST(Loader, MissingLibraryFails) {
  auto App = std::make_shared<Module>("app", "/app",
                                      ModuleKind::Executable);
  App->setInstructions({makeHalt()});
  App->addImport("f", "libmissing.so", 0);
  App->setData(std::vector<uint8_t>(4, 0));
  ModuleRegistry Registry;
  AddressSpace Space;
  Loader L(Space, Registry);
  auto Image = L.load(App);
  ASSERT_FALSE(Image.ok());
  EXPECT_EQ(Image.status().code(), ErrorCode::NotFound);
}

TEST(Loader, MissingSymbolFails) {
  auto Lib = std::make_shared<Module>("lib.so", "/lib.so",
                                      ModuleKind::SharedLibrary);
  Lib->setInstructions({makeRet()});
  auto App = std::make_shared<Module>("app", "/app",
                                      ModuleKind::Executable);
  App->setInstructions({makeHalt()});
  App->addImport("nosuchfn", "lib.so", 0);
  App->setData(std::vector<uint8_t>(4, 0));
  ModuleRegistry Registry;
  Registry.add(Lib);
  AddressSpace Space;
  Loader L(Space, Registry);
  EXPECT_FALSE(L.load(App).ok());
}

TEST(Loader, FixedPolicyIsDeterministic) {
  tests::TinyWorkload W = tests::makeTinyWorkload(2, 2);
  AddressSpace SpaceA, SpaceB;
  Loader LA(SpaceA, W.Registry), LB(SpaceB, W.Registry);
  auto A = LA.load(W.App);
  auto B = LB.load(W.App);
  ASSERT_TRUE(A.ok() && B.ok());
  for (size_t I = 0; I != A->Modules.size(); ++I)
    EXPECT_EQ(A->Modules[I].Base, B->Modules[I].Base);
}

TEST(Loader, RandomizedPolicyMovesLibraries) {
  tests::TinyWorkload W = tests::makeTinyWorkload(2, 2);
  AddressSpace SpaceA, SpaceB;
  Loader LA(SpaceA, W.Registry, BasePolicy::Randomized, 1);
  Loader LB(SpaceB, W.Registry, BasePolicy::Randomized, 2);
  auto A = LA.load(W.App);
  auto B = LB.load(W.App);
  ASSERT_TRUE(A.ok() && B.ok());
  // Executable stays fixed; the library moves with the seed.
  EXPECT_EQ(A->Modules[0].Base, B->Modules[0].Base);
  EXPECT_NE(A->Modules[1].Base, B->Modules[1].Base);
  // Same seed reproduces the layout.
  AddressSpace SpaceC;
  Loader LC(SpaceC, W.Registry, BasePolicy::Randomized, 1);
  auto C = LC.load(W.App);
  ASSERT_TRUE(C.ok());
  EXPECT_EQ(A->Modules[1].Base, C->Modules[1].Base);
}

TEST(Loader, ObserverSeesEveryModule) {
  tests::TinyWorkload W = tests::makeTinyWorkload(1, 3);
  AddressSpace Space;
  Loader L(Space, W.Registry);
  std::vector<std::string> Seen;
  L.setLoadObserver([&](const LoadedModule &Mod) {
    Seen.push_back(Mod.Image->name());
  });
  ASSERT_TRUE(L.load(W.App).ok());
  ASSERT_EQ(Seen.size(), 2u);
  EXPECT_EQ(Seen[0], "tinyapp");
  EXPECT_EQ(Seen[1], "libtest.so");
}

TEST(Loader, TextRelocationApplied) {
  // A module whose jmp needs rebasing: jmp to its own instruction 1.
  auto App = std::make_shared<Module>("app", "/app",
                                      ModuleKind::Executable);
  App->setInstructions({makeJmp(8), makeHalt()});
  App->addTextRelocation(0);
  ModuleRegistry Registry;
  AddressSpace Space;
  Loader L(Space, Registry);
  auto Image = L.load(App);
  ASSERT_TRUE(Image.ok());
  uint8_t Raw[InstructionSize];
  ASSERT_TRUE(
      Space.fetchInstructionBytes(Loader::ExecutableBase, Raw).ok());
  auto Inst = Instruction::decode(Raw);
  ASSERT_TRUE(Inst.ok());
  EXPECT_EQ(Inst->Imm, Loader::ExecutableBase + 8);
}
