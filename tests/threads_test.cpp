//===- tests/threads_test.cpp - multi-threaded guest tests ----------------===//
//
// The paper's system "supports inter-execution as well as
// inter-application persistence of single-threaded, multi-threaded, and
// multi-process applications" (Section 3.2). These tests cover the
// multi-threaded part: cooperative threads scheduled at syscall
// boundaries, identical interleavings across the interpreter, the DBI
// engine, and persistent runs.
//
//===----------------------------------------------------------------------===//

#include "vm/Threads.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::isa;
using namespace pcc::vm;

namespace {

constexpr uint32_t Base = loader::Loader::ExecutableBase;
constexpr uint32_t SysExit = static_cast<uint32_t>(SyscallNumber::Exit);
constexpr uint32_t SysWriteChar =
    static_cast<uint32_t>(SyscallNumber::WriteChar);
constexpr uint32_t SysWriteWord =
    static_cast<uint32_t>(SyscallNumber::WriteWord);
constexpr uint32_t SysYield =
    static_cast<uint32_t>(SyscallNumber::Yield);
constexpr uint32_t SysSpawn =
    static_cast<uint32_t>(SyscallNumber::Spawn);
constexpr uint32_t SysThreadExit =
    static_cast<uint32_t>(SyscallNumber::ThreadExit);

/// Builds a raw executable module from instructions (absolute
/// addresses precomputed against the executable base).
std::shared_ptr<binary::Module>
rawProgram(const std::vector<Instruction> &Insts) {
  auto Mod = std::make_shared<binary::Module>(
      "threads", "/bin/threads", binary::ModuleKind::Executable);
  Mod->setInstructions(Insts);
  Mod->setBssSize(binary::PageSize);
  return Mod;
}

/// A worker at instruction index \p WorkerIndex that writes its
/// argument as a character \p Count times (yield-separated) and exits
/// the thread.
std::vector<Instruction> workerBody(uint32_t Count) {
  std::vector<Instruction> Body;
  for (uint32_t I = 0; I != Count; ++I)
    Body.push_back(makeSys(SysWriteChar)); // r1 = arg = the character.
  Body.push_back(makeSys(SysThreadExit));
  Body.push_back(makeHalt()); // Unreachable.
  return Body;
}

} // namespace

TEST(Threads, SpawnRunsWorkerToCompletion) {
  // main: spawn worker('A'), thread-exit. worker: write 'A' x3, exit.
  std::vector<Instruction> Insts;
  uint32_t WorkerIndex = 5;
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 'A'));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeSys(SysThreadExit));
  Insts.push_back(makeHalt()); // Unreachable.
  std::vector<Instruction> Worker = workerBody(3);
  Insts.insert(Insts.end(), Worker.begin(), Worker.end());

  loader::ModuleRegistry Registry;
  auto M = Machine::create(rawProgram(Insts), Registry);
  ASSERT_TRUE(M.ok());
  RunResult R = M->runNative();
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_EQ(R.ExitCode, 0u);
  EXPECT_EQ(R.Output, "AAA");
}

TEST(Threads, SpawnReturnsThreadIdAndArgReachesWorker) {
  // main: spawn worker(42); write spawn result (tid); exit program.
  // worker: writes its argument as a word.
  std::vector<Instruction> Insts;
  uint32_t WorkerIndex = 6;
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 42));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeSys(SysWriteWord)); // r1 == tid == 1.
  Insts.push_back(makeSys(SysThreadExit));
  Insts.push_back(makeHalt());
  // Worker at index 6:
  Insts.push_back(makeSys(SysWriteWord)); // r1 == 42.
  Insts.push_back(makeSys(SysThreadExit));
  Insts.push_back(makeHalt());
  ASSERT_EQ(WorkerIndex, 6u);

  loader::ModuleRegistry Registry;
  auto M = Machine::create(rawProgram(Insts), Registry);
  ASSERT_TRUE(M.ok());
  RunResult R = M->runNative();
  ASSERT_TRUE(R.ok());
  // main writes tid=1 after its spawn syscall rotated to the worker:
  // worker writes 42 first, then main writes 1.
  EXPECT_EQ(R.WordLog, (std::vector<uint32_t>{42, 1}));
}

TEST(Threads, RoundRobinInterleavingIsDeterministic) {
  // Two workers writing 'a' and 'b' three times each; switches at each
  // syscall produce a strict interleave.
  std::vector<Instruction> Insts;
  uint32_t WorkerIndex = 7;
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 'a'));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 'b'));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeSys(SysThreadExit));
  ASSERT_EQ(Insts.size(), WorkerIndex);
  std::vector<Instruction> Worker = workerBody(3);
  Insts.insert(Insts.end(), Worker.begin(), Worker.end());

  loader::ModuleRegistry Registry;
  auto M = Machine::create(rawProgram(Insts), Registry);
  ASSERT_TRUE(M.ok());
  RunResult R = M->runNative();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitCode, 0u);
  // Exact interleaving is part of the contract (deterministic
  // round-robin at syscalls): T1 enters after main's first spawn,
  // T2 after the second, then strict rotation T0,T1,T2.
  EXPECT_EQ(R.Output, "aababb");
}

TEST(Threads, ExitTerminatesAllThreads) {
  // Worker loops forever writing; main exits the program after its
  // spawn — everything stops with main's exit code.
  std::vector<Instruction> Insts;
  uint32_t WorkerIndex = 5;
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 'x'));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeLdi(1, 9));
  Insts.push_back(makeSys(SysExit));
  // Worker at 5: infinite write loop.
  Insts.push_back(makeSys(SysWriteChar));
  Insts.push_back(makeJmp(Base + WorkerIndex * InstructionSize));

  loader::ModuleRegistry Registry;
  auto M = Machine::create(rawProgram(Insts), Registry);
  ASSERT_TRUE(M.ok());
  RunResult R = M->runNative();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitCode, 9u);
  // Worker got exactly one write in (after main's spawn, before main's
  // ldi+exit reached the Exit syscall).
  EXPECT_EQ(R.Output, "x");
}

TEST(Threads, SpawnFailureBeyondLimit) {
  // Spawn MaxThreads workers; the one beyond the limit returns
  // 0xffffffff.
  std::vector<Instruction> Insts;
  const uint32_t Spawns = ThreadScheduler::MaxThreads; // 1 too many.
  uint32_t WorkerIndex = 3 * Spawns + 3;
  for (uint32_t I = 0; I != Spawns; ++I) {
    Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
    Insts.push_back(makeLdi(2, 0));
    Insts.push_back(makeSys(SysSpawn));
  }
  Insts.push_back(makeSys(SysWriteWord)); // Last spawn's result.
  Insts.push_back(makeLdi(1, 0));
  Insts.push_back(makeSys(SysExit));
  ASSERT_EQ(Insts.size(), WorkerIndex);
  Insts.push_back(makeSys(SysThreadExit)); // Workers exit immediately.

  loader::ModuleRegistry Registry;
  auto M = Machine::create(rawProgram(Insts), Registry);
  ASSERT_TRUE(M.ok());
  RunResult R = M->runNative();
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  ASSERT_EQ(R.WordLog.size(), 1u);
  EXPECT_EQ(R.WordLog[0], 0xffffffffu);
}

TEST(Threads, EngineMatchesInterpreterWithThreads) {
  // A threaded program with real work in each thread.
  std::vector<Instruction> Insts;
  uint32_t WorkerIndex = 8;
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 5));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 9));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeSys(SysYield));
  Insts.push_back(makeSys(SysThreadExit));
  ASSERT_EQ(Insts.size(), WorkerIndex);
  // Worker(n): r3 = n*n via loop; write word; thread-exit.
  uint32_t LoopIndex = WorkerIndex + 3;
  Insts.push_back(makeLdi(3, 0));          // acc = 0
  Insts.push_back(makeAlu(Opcode::Add, 4, 1, 12)); // counter = n
  Insts.push_back(makeLdi(12, 0));
  Insts.push_back(makeAlu(Opcode::Add, 3, 3, 1)); // loop: acc += n
  Insts.push_back(makeAluImm(Opcode::Addi, 4, 4, 0xffffffffu));
  Insts.push_back(makeBranch(Opcode::Bne, 4, 12,
                             Base + LoopIndex * InstructionSize));
  Insts.push_back(makeAlu(Opcode::Add, 1, 3, 12)); // r1 = acc
  Insts.push_back(makeSys(SysWriteWord));
  Insts.push_back(makeSys(SysThreadExit));
  Insts.push_back(makeHalt());

  loader::ModuleRegistry Registry;
  auto Program = rawProgram(Insts);
  auto MNative = Machine::create(Program, Registry);
  ASSERT_TRUE(MNative.ok());
  RunResult Native = MNative->runNative();
  ASSERT_TRUE(Native.ok()) << Native.Error.toString();
  // 5*5 and 9*9 computed concurrently.
  ASSERT_EQ(Native.WordLog.size(), 2u);
  EXPECT_EQ(Native.WordLog[0] + Native.WordLog[1], 25u + 81u);

  auto MEngine = Machine::create(Program, Registry);
  ASSERT_TRUE(MEngine.ok());
  dbi::Engine Engine(*MEngine, nullptr);
  RunResult Translated = Engine.run();
  ASSERT_TRUE(Translated.ok()) << Translated.Error.toString();
  EXPECT_TRUE(Native.observablyEquals(Translated));
}

TEST(Threads, PersistenceWorksForThreadedGuests) {
  std::vector<Instruction> Insts;
  uint32_t WorkerIndex = 5;
  Insts.push_back(makeLdi(1, Base + WorkerIndex * InstructionSize));
  Insts.push_back(makeLdi(2, 'T'));
  Insts.push_back(makeSys(SysSpawn));
  Insts.push_back(makeSys(SysThreadExit));
  Insts.push_back(makeHalt());
  std::vector<Instruction> Worker = workerBody(4);
  Insts.insert(Insts.end(), Worker.begin(), Worker.end());
  auto Program = rawProgram(Insts);
  loader::ModuleRegistry Registry;

  tests::TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto run = [&] {
    auto M = Machine::create(Program, Registry);
    EXPECT_TRUE(M.ok());
    auto R = persist::runWithPersistence(*M, nullptr,
                                         dbi::EngineOptions(), Db);
    EXPECT_TRUE(R.ok());
    return R.take();
  };
  auto Cold = run();
  auto Warm = run();
  EXPECT_EQ(Warm.Stats.TracesCompiled, 0u);
  EXPECT_TRUE(Cold.Run.observablyEquals(Warm.Run));
  EXPECT_EQ(Warm.Run.Output, "TTTT");
}
