//===- tests/opt_tier_test.cpp - finalize-time AOT optimization tier ------===//
//
// The optimization-generation suite: promotion at finalize must be
// architecturally invisible (identical guest results promotion on/off,
// across seeds), every transformed body must be validator-proved (a
// seeded miscompile in any of the new passes is flagged), a corrupt
// promoted payload falls back per trace, heat counters survive the
// v2 -> v3 -> promoted-generation migration, a recorded gen-0 run
// replays bit-identically after the database advances to gen-2, and a
// stale gen-0 finalizer can never clobber a promoted artifact in a
// tiered store.
//
// Built as its own CTest executable (opt_tier_test) so the --opt soak
// leg of scripts/check.sh can run exactly this binary under ASan and
// TSan.
//
//===----------------------------------------------------------------------===//

#include "analysis/Optimizer.h"
#include "analysis/Validator.h"
#include "dbi/Engine.h"
#include "persist/CacheDatabase.h"
#include "persist/CacheView.h"
#include "persist/MemoryStore.h"
#include "persist/Session.h"
#include "persist/TieredStore.h"
#include "replay/Recorder.h"
#include "replay/Replay.h"
#include "support/FaultInjector.h"
#include "support/FileSystem.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace pcc;
using namespace pcc::analysis;
using pcc::isa::Opcode;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

/// Path of the single .pcc file in \p Dir.
std::string soleCachePath(const std::string &Dir) {
  auto Names = listDirectory(Dir);
  EXPECT_TRUE(Names.ok());
  std::string Found;
  if (Names)
    for (const std::string &Name : *Names)
      if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".pcc")
        Found = Dir + "/" + Name;
  EXPECT_FALSE(Found.empty());
  return Found;
}

/// Flips one byte at absolute \p Offset of the file at \p Path.
void flipByteAt(const std::string &Path, size_t Offset) {
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  ASSERT_GT(Bytes->size(), Offset);
  (*Bytes)[Offset] ^= 0xff;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());
}

/// One persistent run of \p W.
ErrorOr<persist::PersistentRunResult>
run(const TinyWorkload &W, const std::vector<uint8_t> &Input,
    const persist::CacheDatabase &Db,
    const persist::PersistOptions &Opts = persist::PersistOptions()) {
  return workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
}

/// Per-start heat map of the cache file at \p Path.
std::map<uint32_t, uint32_t> heatByStart(const persist::CacheDatabase &Db,
                                         const std::string &Path) {
  std::map<uint32_t, uint32_t> Heat;
  auto File = Db.loadPath(Path);
  EXPECT_TRUE(File.ok()) << File.status().toString();
  if (File)
    for (const persist::TraceRecord &Rec : File->Traces)
      Heat[Rec.GuestStart] = Rec.Heat;
  return Heat;
}

} // namespace

//===----------------------------------------------------------------------===//
// Architectural invisibility: results identical promotion on/off.
//===----------------------------------------------------------------------===//

TEST(OptTier, ResultsIdenticalAcrossSeedsPromotionOnOff) {
  uint64_t Promoted = 0;
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    TinyWorkload W = makeTinyWorkload(3, 2, 1000 + Seed);
    TempDir DirOn, DirOff;
    persist::CacheDatabase On(DirOn.path()), Off(DirOff.path());
    persist::PersistOptions WithOpt;
    WithOpt.OptTier = true;
    const std::vector<uint8_t> Input = W.allSlotsInput(4);

    auto ColdOn = run(W, Input, On, WithOpt);
    auto ColdOff = run(W, Input, Off);
    ASSERT_TRUE(ColdOn.ok()) << ColdOn.status().toString();
    ASSERT_TRUE(ColdOff.ok()) << ColdOff.status().toString();
    EXPECT_TRUE(ColdOn->Run.observablyEquals(ColdOff->Run));
    // Promotion runs in modeled background time behind the durability
    // barrier and the write charge is taken on the pre-promotion file:
    // the cold run's cycle bill must be bit-identical either way.
    EXPECT_EQ(ColdOn->Stats.totalCycles(), ColdOff->Stats.totalCycles());

    auto WarmOn = run(W, Input, On, WithOpt);
    auto WarmOff = run(W, Input, Off);
    ASSERT_TRUE(WarmOn.ok() && WarmOff.ok());
    EXPECT_TRUE(WarmOn->Run.observablyEquals(WarmOff->Run));
    // A gen-1+ cache never executes more modeled cycles than gen-0.
    EXPECT_LE(WarmOn->Stats.ExecCycles, WarmOff->Stats.ExecCycles);
    Promoted += ColdOn->Stats.TracesPromoted + WarmOn->Stats.TracesPromoted;
  }
  // The sweep must actually exercise promotion, not vacuously pass.
  EXPECT_GT(Promoted, 0u);
}

//===----------------------------------------------------------------------===//
// The validator is the safety net: seeded miscompiles in the new
// passes are caught 100%.
//===----------------------------------------------------------------------===//

namespace {

/// A body exercising all three scalar passes: a foldable ALU chain, a
/// provably redundant reload, a reload a store kills, and a shadowed
/// (dead) def.
std::vector<isa::Instruction> passExerciseBody() {
  return {
      isa::makeLdi(1, 5),
      isa::makeAlu(Opcode::Add, 2, 1, 1), // foldable: r2 = 10
      isa::makeLoad(3, 9, 0),
      isa::makeLoad(4, 9, 0), // redundant: value already in r3
      isa::makeAlu(Opcode::Add, 5, 4, 2),
      isa::makeStore(9, 0, 5),
      isa::makeLoad(6, 9, 0), // NOT redundant: the store intervened
      isa::makeLdi(7, 1),     // dead: shadowed before any exit
      isa::makeLdi(7, 2),
      isa::makeJmp(0x2000),
  };
}

} // namespace

TEST(OptTier, OptimizerOutputOfTheNewPassesProves) {
  const uint32_t Start = 0x1000;
  std::vector<isa::Instruction> Body = passExerciseBody();
  const std::vector<isa::Instruction> Source = Body;
  TraceOptStats Stats;
  EXPECT_TRUE(optimizeTraceBody(Body, Start, /*AllowConstFold=*/true, Stats));
  EXPECT_GT(Stats.ConstsFolded, 0u);
  EXPECT_GT(Stats.LoadsEliminated, 0u);
  ValidationResult R = validateTranslation(Start, Source, Body);
  EXPECT_TRUE(R.Equivalent) << R.message();
}

TEST(OptTier, ValidatorCatchesEverySeededMiscompileInTheNewPasses) {
  const uint32_t Start = 0x1000;
  const std::vector<isa::Instruction> Source = passExerciseBody();

  // Each case is a plausible-but-wrong output of one of the promotion
  // passes — the exact bug class the proof obligation exists for.
  struct Case {
    const char *What;
    size_t Index;
    isa::Instruction Replacement;
  };
  const Case Cases[] = {
      {"constprop folded the wrong constant", 1, isa::makeLdi(2, 11)},
      {"constprop folded a load-dependent value", 4, isa::makeLdi(5, 17)},
      {"RLE forwarded from the wrong register", 3,
       isa::makeAluImm(Opcode::Ori, 4, 2, 0)},
      {"RLE elided a load a store had killed", 6, isa::makeNop()},
      {"RLE elided a load never loaded before", 2, isa::makeNop()},
      {"dead-def elision removed the live def", 8, isa::makeNop()},
  };
  unsigned Seeded = 0, Flagged = 0;
  for (const Case &C : Cases) {
    std::vector<isa::Instruction> Bad = Source;
    Bad[C.Index] = C.Replacement;
    ++Seeded;
    if (!validateTranslation(Start, Source, Bad).Equivalent)
      ++Flagged;
    else
      ADD_FAILURE() << C.What << " not flagged";
  }

  // Superblock-merge miscompiles: the merged source is the
  // concatenation of the chain members' bodies, exactly what
  // promotion proves a merged body against.
  const std::vector<isa::Instruction> Head{
      isa::makeLoad(1, 9, 0),
      isa::makeAluImm(Opcode::Addi, 1, 1, 1),
      isa::makeBranch(Opcode::Beq, 1, 0, 0x3000),
  };
  const std::vector<isa::Instruction> Tail{
      isa::makeStore(9, 0, 1),
      isa::makeJmp(0x2000),
  };
  std::vector<isa::Instruction> Merged = Head;
  Merged.insert(Merged.end(), Tail.begin(), Tail.end());
  const std::vector<isa::Instruction> MergedSource = Merged;
  // A correct merge proves.
  EXPECT_TRUE(
      validateTranslation(Start, MergedSource, Merged).Equivalent);
  const Case MergeCases[] = {
      {"merge dropped the interior side exit", 2, isa::makeNop()},
      {"merge shifted the interior exit target", 2,
       isa::makeBranch(Opcode::Beq, 1, 0, 0x3008)},
      {"merge lost the tail's store", 3, isa::makeNop()},
  };
  for (const Case &C : MergeCases) {
    std::vector<isa::Instruction> Bad = MergedSource;
    Bad[C.Index] = C.Replacement;
    ++Seeded;
    if (!validateTranslation(Start, MergedSource, Bad).Equivalent)
      ++Flagged;
    else
      ADD_FAILURE() << C.What << " not flagged";
  }
  EXPECT_EQ(Seeded, Flagged) << "validator missed a seeded miscompile";
}

//===----------------------------------------------------------------------===//
// Per-trace fallback: a corrupt promoted payload drops that trace
// only; the run retranslates it and every result stays correct.
//===----------------------------------------------------------------------===//

TEST(OptTier, CorruptPromotedPayloadFallsBackPerTrace) {
  TinyWorkload W = makeTinyWorkload(3, 0, 77);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  persist::PersistOptions WithOpt;
  WithOpt.OptTier = true;
  const std::vector<uint8_t> Input = W.allSlotsInput(6);

  auto Cold = run(W, Input, Db, WithOpt);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  ASSERT_GT(Cold->Stats.TracesPromoted, 0u);

  // Reference warm run over the intact promoted cache.
  persist::PersistOptions ReadOnly = WithOpt;
  ReadOnly.WriteBack = false;
  auto Ref = run(W, Input, Db, ReadOnly);
  ASSERT_TRUE(Ref.ok());
  ASSERT_GT(Ref->Stats.TracesReused, 0u);

  // Flip a byte inside one promoted trace's body.
  const std::string Path = soleCachePath(Dir.path());
  size_t CorruptAt = 0;
  {
    auto View = persist::CacheFileView::openFile(
        Path, persist::CacheFileView::Depth::Index);
    ASSERT_TRUE(View.ok()) << View.status().toString();
    ASSERT_TRUE(View->optGenEntries());
    for (uint32_t I = 0; I != View->numTraces(); ++I) {
      const persist::TraceIndexEntry &E = View->entry(I);
      if (E.OptGen == 0)
        continue;
      CorruptAt = static_cast<size_t>(View->payloadOffset()) +
                  E.CodeOffset + dbi::TracePrologueBytes + 1;
      break;
    }
  }
  ASSERT_NE(CorruptAt, 0u) << "no promoted trace in the written cache";
  flipByteAt(Path, CorruptAt);

  // The warm run still primes, drops exactly the corrupt trace at its
  // lazy CRC check, retranslates it, and computes identical results.
  auto Fallback = run(W, Input, Db, ReadOnly);
  ASSERT_TRUE(Fallback.ok()) << Fallback.status().toString();
  EXPECT_TRUE(Fallback->Run.observablyEquals(Ref->Run));
  EXPECT_EQ(Fallback->Stats.TracesDroppedCorrupt, 1u);
  EXPECT_EQ(Fallback->Stats.TracesReused + 1, Ref->Stats.TracesReused);
}

TEST(OptTier, PromotedBodiesSurviveSemanticMaterializeValidation) {
  TinyWorkload W = makeTinyWorkload(3, 0, 21);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  persist::PersistOptions WithOpt;
  WithOpt.OptTier = true;
  const std::vector<uint8_t> Input = W.allSlotsInput(5);
  auto Cold = run(W, Input, Db, WithOpt);
  ASSERT_TRUE(Cold.ok());
  ASSERT_GT(Cold->Stats.TracesPromoted, 0u);

  // Deep semantic validation re-proves every promoted body when it is
  // materialized; none may fail.
  persist::PersistOptions Deep = WithOpt;
  Deep.WriteBack = false;
  Deep.ValidateSemantic = true;
  auto Warm = run(W, Input, Db, Deep);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_GT(Warm->Stats.TracesVerified, 0u);
  EXPECT_EQ(Warm->Stats.VerifyFailures, 0u);
  EXPECT_EQ(Warm->Stats.TracesDroppedCorrupt, 0u);
}

//===----------------------------------------------------------------------===//
// Format migration: heat carried v2 -> v3 (XIP) -> promoted gen-N.
//===----------------------------------------------------------------------===//

TEST(OptTier, HeatCarriesAcrossV2V3AndPromotedGenerations) {
  TinyWorkload W = makeTinyWorkload(3, 0, 5);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  const std::vector<uint8_t> Input = W.allSlotsInput(3);

  // Run 1: plain position-independent v2 cache.
  persist::PersistOptions Pic;
  Pic.PositionIndependent = true;
  ASSERT_TRUE(run(W, Input, Db, Pic).ok());
  const std::string Path = soleCachePath(Dir.path());
  auto Heat1 = heatByStart(Db, Path);
  ASSERT_FALSE(Heat1.empty());
  {
    auto View = persist::CacheFileView::openFile(
        Path, persist::CacheFileView::Depth::Index);
    ASSERT_TRUE(View.ok());
    EXPECT_FALSE(View->executeInPlace());
    EXPECT_FALSE(View->optGenEntries());
  }

  // Run 2: rewrite as an execute-in-place v3 generation.
  persist::PersistOptions Xip = Pic;
  Xip.ExecuteInPlace = true;
  ASSERT_TRUE(run(W, Input, Db, Xip).ok());
  auto Heat2 = heatByStart(Db, Path);
  {
    auto View = persist::CacheFileView::openFile(
        Path, persist::CacheFileView::Depth::Index);
    ASSERT_TRUE(View.ok());
    EXPECT_TRUE(View->executeInPlace());
  }

  // Run 3: consume the XIP generation, promote at finalize.
  persist::PersistOptions Opt = Pic;
  Opt.OptTier = true;
  auto Promote = run(W, Input, Db, Opt);
  ASSERT_TRUE(Promote.ok());
  EXPECT_GT(Promote->Stats.TracesPromoted, 0u);
  auto Heat3 = heatByStart(Db, Path);
  {
    auto View = persist::CacheFileView::openFile(
        Path, persist::CacheFileView::Depth::Index);
    ASSERT_TRUE(View.ok());
    EXPECT_TRUE(View->optGenEntries());
  }
  auto File = Db.loadPath(Path);
  ASSERT_TRUE(File.ok());
  EXPECT_GE(File->maxOptGen(), 1u);

  // Heat accumulated across every format hop — no migration reset it.
  size_t Grew = 0;
  for (const auto &[Start, H3] : Heat3) {
    auto It2 = Heat2.find(Start);
    if (It2 == Heat2.end())
      continue;
    EXPECT_GE(H3, It2->second) << "heat lost at start " << Start;
    auto It1 = Heat1.find(Start);
    if (It1 != Heat1.end()) {
      EXPECT_GE(It2->second, It1->second)
          << "heat lost in the v2->v3 hop at start " << Start;
    }
    if (H3 > It2->second)
      ++Grew;
  }
  EXPECT_GT(Grew, 0u);
  // Promoted records carry their accumulated lifetime heat.
  for (const persist::TraceRecord &Rec : File->Traces)
    if (Rec.OptGen > 0) {
      EXPECT_GE(Rec.Heat, 2u);
    }
}

//===----------------------------------------------------------------------===//
// Replay: a run recorded against gen-0 bytes replays bit-identically
// even after the live database has advanced to gen-2.
//===----------------------------------------------------------------------===//

TEST(OptTier, RecordedGen0RunReplaysBitIdenticallyWithGen2Present) {
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(3, 2, 9);
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  const std::vector<uint8_t> Input = W.allSlotsInput(4);

  // A gen-0 database, and a recorded warm run consuming it.
  ASSERT_TRUE(run(W, Input, Db).ok());
  auto Rec = replay::recordRun(W.Registry, W.App, Input, Db,
                               persist::PersistOptions(),
                               replay::RecordSpec());
  ASSERT_TRUE(Rec.ok()) << Rec.status().toString();

  // Advance the live database to optimization generation >= 2.
  persist::PersistOptions WithOpt;
  WithOpt.OptTier = true;
  ASSERT_TRUE(run(W, Input, Db, WithOpt).ok());
  ASSERT_TRUE(run(W, Input, Db, WithOpt).ok());
  auto File = Db.loadPath(soleCachePath(Dir.path()));
  ASSERT_TRUE(File.ok());
  ASSERT_GE(File->maxOptGen(), 2u);

  // The log replays from its recorded gen-0 cache bytes, not the
  // promoted database: bit-identical outcome.
  auto Out = replay::replayRun(*Rec, replay::ReplayOptions());
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(replay::compareToRecording(*Rec, *Out), "");
}

//===----------------------------------------------------------------------===//
// Tiered contract: a stale gen-0 finalizer can't clobber a promoted
// artifact in either tier.
//===----------------------------------------------------------------------===//

TEST(OptTier, StaleGen0FinalizerCannotClobberPromotedTieredArtifact) {
  // Build a promoted file and a gen-0 sibling from real runs of the
  // same workload.
  TinyWorkload W = makeTinyWorkload(2, 0, 11);
  TempDir DirA, DirB;
  persist::CacheDatabase A(DirA.path()), B(DirB.path());
  persist::PersistOptions WithOpt;
  WithOpt.OptTier = true;
  const std::vector<uint8_t> Input = W.allSlotsInput(5);
  auto RunA = run(W, Input, A, WithOpt);
  ASSERT_TRUE(RunA.ok());
  ASSERT_GT(RunA->Stats.TracesPromoted, 0u);
  ASSERT_TRUE(run(W, Input, B).ok());
  auto Promoted = A.loadPath(soleCachePath(DirA.path()));
  auto Plain = B.loadPath(soleCachePath(DirB.path()));
  ASSERT_TRUE(Promoted.ok() && Plain.ok());
  ASSERT_GE(Promoted->maxOptGen(), 1u);
  ASSERT_EQ(Plain->maxOptGen(), 0u);

  auto L1 = std::make_shared<persist::MemoryStore>("<l1>");
  auto L2 = std::make_shared<persist::MemoryStore>("<remote>");
  persist::TieredStore Store(L1, L2, persist::TieredOptions());
  const uint64_t Key = 5;

  // The promoted artifact is published fleet-wide first.
  auto First = Store.publish(Key, *Promoted, 0);
  ASSERT_TRUE(First.ok()) << First.status().toString();
  EXPECT_FALSE(First->Merged);

  // A machine that primed gen-0 bytes before the promotion landed now
  // finalizes the same key from the same base generation.
  auto Second = Store.publish(Key, *Plain, 0);
  ASSERT_TRUE(Second.ok()) << Second.status().toString();
  EXPECT_TRUE(Second->Merged);

  // The shared tier's merge kept the highest proven generation per
  // trace, and the write-through fill refused the gen-0 downgrade: the
  // promoted bodies survive in both tiers.
  auto L2Now = L2->loadKey(Key);
  ASSERT_TRUE(L2Now.ok());
  EXPECT_GE(L2Now->maxOptGen(), Promoted->maxOptGen());
  auto Served = Store.loadKey(Key);
  ASSERT_TRUE(Served.ok());
  EXPECT_GE(Served->maxOptGen(), Promoted->maxOptGen());
  auto L1View =
      L1->openKey(Key, persist::CacheFileView::Depth::HeaderOnly);
  ASSERT_TRUE(L1View.ok());
  EXPECT_TRUE(L1View->View && L1View->View->optGenEntries());

  // Merged records also kept the larger heat of the two copies.
  auto ByStart = [](const persist::CacheFile &F) {
    std::map<uint32_t, uint32_t> M;
    for (const persist::TraceRecord &R : F.Traces)
      M[R.GuestStart] = R.Heat;
    return M;
  };
  auto PromHeat = ByStart(*Promoted), PlainHeat = ByStart(*Plain);
  for (const persist::TraceRecord &R : Served->Traces) {
    auto P = PromHeat.find(R.GuestStart);
    auto Q = PlainHeat.find(R.GuestStart);
    if (P != PromHeat.end() && Q != PlainHeat.end()) {
      EXPECT_GE(R.Heat, std::max(P->second, Q->second));
    }
  }
}
