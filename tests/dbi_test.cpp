//===- tests/dbi_test.cpp - DBI engine unit and integration tests ---------===//

#include "dbi/CodeCache.h"
#include "dbi/Compiler.h"
#include "dbi/Engine.h"
#include "dbi/Tool.h"
#include "dbi/Trace.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::isa;
using namespace pcc::dbi;
using tests::makeTinyWorkload;
using tests::TinyWorkload;

namespace {

/// Maps raw instructions at \p Base for trace-selection tests.
loader::AddressSpace spaceWith(const std::vector<Instruction> &Insts,
                               uint32_t Base = 0x1000) {
  loader::AddressSpace Space;
  EXPECT_TRUE(Space.mapRegion(Base, 0x4000).ok());
  std::vector<uint8_t> Bytes = encodeAll(Insts);
  EXPECT_TRUE(
      Space.writeBytes(Base, Bytes.data(),
                       static_cast<uint32_t>(Bytes.size()))
          .ok());
  return Space;
}

} // namespace

TEST(TraceSelection, EndsAtUnconditionalBranch) {
  auto Space = spaceWith({makeLdi(1, 1), makeAlu(Opcode::Add, 2, 1, 1),
                          makeJmp(0x2000), makeLdi(3, 3)});
  auto T = selectTrace(Space, 0x1000, 16);
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T->numInsts(), 3u);
  ASSERT_EQ(T->Exits.size(), 1u);
  EXPECT_EQ(T->Exits[0].Kind, ExitKind::Direct);
  EXPECT_EQ(T->Exits[0].Target, 0x2000u);
  EXPECT_EQ(T->Exits[0].InstIndex, 2u);
}

TEST(TraceSelection, ConditionalBranchContinuesTrace) {
  auto Space = spaceWith({makeBranch(Opcode::Beq, 1, 2, 0x3000),
                          makeLdi(1, 1), makeRet()});
  auto T = selectTrace(Space, 0x1000, 16);
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T->numInsts(), 3u);
  ASSERT_EQ(T->Exits.size(), 2u);
  EXPECT_EQ(T->Exits[0].Kind, ExitKind::Branch);
  EXPECT_EQ(T->Exits[0].Target, 0x3000u);
  EXPECT_EQ(T->Exits[1].Kind, ExitKind::Indirect);
}

TEST(TraceSelection, InstructionLimitProducesFallThrough) {
  std::vector<Instruction> Insts(20, makeAlu(Opcode::Add, 1, 1, 2));
  auto Space = spaceWith(Insts);
  auto T = selectTrace(Space, 0x1000, 8);
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T->numInsts(), 8u);
  ASSERT_EQ(T->Exits.size(), 1u);
  EXPECT_EQ(T->Exits[0].Kind, ExitKind::FallThrough);
  EXPECT_EQ(T->Exits[0].Target, 0x1000u + 8 * InstructionSize);
}

TEST(TraceSelection, SyscallEndsTraceWithFallThroughTarget) {
  auto Space = spaceWith({makeLdi(1, 1), makeSys(4), makeLdi(2, 2)});
  auto T = selectTrace(Space, 0x1000, 16);
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T->numInsts(), 2u);
  ASSERT_EQ(T->Exits.size(), 1u);
  EXPECT_EQ(T->Exits[0].Kind, ExitKind::Syscall);
  EXPECT_EQ(T->Exits[0].Target, 0x1010u);
}

TEST(TraceSelection, HaltEndsTrace) {
  auto Space = spaceWith({makeHalt()});
  auto T = selectTrace(Space, 0x1000, 16);
  ASSERT_TRUE(T.ok());
  ASSERT_EQ(T->Exits.size(), 1u);
  EXPECT_EQ(T->Exits[0].Kind, ExitKind::Halt);
}

TEST(TraceSelection, CountsBlocksAndMemoryOps) {
  auto Space = spaceWith({makeLoad(1, 15, 0),
                          makeBranch(Opcode::Beq, 1, 2, 0x3000),
                          makeStore(15, 4, 1), makeRet()});
  auto T = selectTrace(Space, 0x1000, 16);
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T->numBasicBlocks(), 2u);
  EXPECT_EQ(T->numMemoryAccesses(), 2u);
}

TEST(TraceSelection, UnmappedCodeFaults) {
  loader::AddressSpace Space;
  auto T = selectTrace(Space, 0x1000, 16);
  ASSERT_FALSE(T.ok());
  EXPECT_EQ(T.status().code(), ErrorCode::GuestFault);
}

TEST(CodeCache, AllocateAndLookup) {
  CodeCache Cache(1 << 20, 1 << 20);
  auto Offset = Cache.allocateCode(64);
  ASSERT_TRUE(Offset.ok());
  EXPECT_EQ(*Offset, 0u);
  auto T = std::make_unique<TranslatedTrace>(
      0x1000, 2, *Offset, 64, std::vector<TraceExit>{},
      /*FromPersistentCache=*/false);
  auto Added = Cache.addTrace(std::move(T));
  ASSERT_TRUE(Added.ok());
  EXPECT_EQ(Cache.lookup(0x1000), *Added);
  EXPECT_EQ(Cache.lookup(0x2000), nullptr);
}

TEST(CodeCache, CodePoolExhaustion) {
  CodeCache Cache(100, 1 << 20);
  ASSERT_TRUE(Cache.allocateCode(80).ok());
  auto Fail = Cache.allocateCode(80);
  ASSERT_FALSE(Fail.ok());
  EXPECT_EQ(Fail.status().code(), ErrorCode::OutOfMemory);
}

TEST(CodeCache, DataPoolExhaustion) {
  CodeCache Cache(1 << 20, 100); // Data pool smaller than one trace.
  auto T = std::make_unique<TranslatedTrace>(
      0x1000, 4, 0, 0, std::vector<TraceExit>{}, false);
  auto Added = Cache.addTrace(std::move(T));
  ASSERT_FALSE(Added.ok());
  EXPECT_EQ(Added.status().code(), ErrorCode::OutOfMemory);
}

TEST(CodeCache, FlushDiscardsEverything) {
  CodeCache Cache(1 << 20, 1 << 20);
  ASSERT_TRUE(Cache.allocateCode(64).ok());
  auto T = std::make_unique<TranslatedTrace>(
      0x1000, 2, 0, 64, std::vector<TraceExit>{}, false);
  ASSERT_TRUE(Cache.addTrace(std::move(T)).ok());
  Cache.flush();
  EXPECT_EQ(Cache.lookup(0x1000), nullptr);
  EXPECT_EQ(Cache.codeBytesUsed(), 0u);
  EXPECT_EQ(Cache.dataBytesUsed(), 0u);
  EXPECT_TRUE(Cache.traces().empty());
}

TEST(CodeCache, LinkAndRemoveRangeUnlinks) {
  CodeCache Cache(1 << 20, 1 << 20);
  std::vector<TraceExit> ExitsA = {
      TraceExit{ExitKind::Direct, 0, 0x2000, nullptr}};
  auto A = Cache.addTrace(std::make_unique<TranslatedTrace>(
      0x1000, 1, 0, 0, ExitsA, false));
  auto B = Cache.addTrace(std::make_unique<TranslatedTrace>(
      0x2000, 1, 0, 0, std::vector<TraceExit>{}, false));
  ASSERT_TRUE(A.ok() && B.ok());
  Cache.link(*A, 0, *B);
  EXPECT_EQ((*A)->exits()[0].Link, *B);
  ASSERT_EQ((*B)->incomingLinks().size(), 1u);

  // Removing B's range must unlink A's exit.
  EXPECT_EQ(Cache.removeTracesInRange(0x2000, 0x100), 1u);
  EXPECT_EQ((*A)->exits()[0].Link, nullptr);
  EXPECT_EQ(Cache.lookup(0x2000), nullptr);
  EXPECT_EQ(Cache.lookup(0x1000), *A);
}

TEST(CodeCache, RemoveRangeDropsOutgoingIncomingEdges) {
  CodeCache Cache(1 << 20, 1 << 20);
  std::vector<TraceExit> ExitsA = {
      TraceExit{ExitKind::Direct, 0, 0x2000, nullptr}};
  auto A = Cache.addTrace(std::make_unique<TranslatedTrace>(
      0x1000, 1, 0, 0, ExitsA, false));
  auto B = Cache.addTrace(std::make_unique<TranslatedTrace>(
      0x2000, 1, 0, 0, std::vector<TraceExit>{}, false));
  ASSERT_TRUE(A.ok() && B.ok());
  Cache.link(*A, 0, *B);
  // Removing A (the source) must clear B's incoming list.
  EXPECT_EQ(Cache.removeTracesInRange(0x1000, 0x100), 1u);
  EXPECT_TRUE((*B)->incomingLinks().empty());
}

TEST(CodeCache, TouchPagesCountsNewPagesOnce) {
  CodeCache Cache(1 << 20, 1 << 20);
  ASSERT_TRUE(Cache.installPersistedPool(
      std::vector<uint8_t>(3 * binary::PageSize, 0)).ok());
  EXPECT_EQ(Cache.touchPages(0, 100), 1u);
  EXPECT_EQ(Cache.touchPages(50, 100), 0u); // Same page.
  EXPECT_EQ(Cache.touchPages(4000, 200), 1u); // Crosses into page 1.
  EXPECT_EQ(Cache.touchPages(0, 3 * binary::PageSize), 1u); // Page 2.
}

TEST(Compiler, ChargesCompileCycles) {
  auto Space = spaceWith({makeLdi(1, 1), makeJmp(0x2000)});
  CodeCache Cache(1 << 20, 1 << 20);
  CostModel Costs;
  Compiler Comp(Space, Cache, Costs, InstrumentationSpec(), 16);
  EngineStats Stats;
  auto T = Comp.compile(0x1000, Stats);
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(Stats.TracesCompiled, 1u);
  EXPECT_EQ(Stats.CompileCycles,
            Costs.CompileCyclesPerTrace + 2 * Costs.CompileCyclesPerInst);
  EXPECT_EQ(Stats.Timeline.size(), 1u);
  EXPECT_TRUE((*T)->isMaterialized());
  EXPECT_EQ((*T)->guestInstCount(), 2u);
}

TEST(Compiler, InstrumentationAddsCompileCostAndCodeBytes) {
  auto Space = spaceWith({makeLoad(1, 15, 0), makeJmp(0x2000)});
  CostModel Costs;
  InstrumentationSpec Spec;
  Spec.MemoryAccesses = true;

  CodeCache Plain(1 << 20, 1 << 20);
  EngineStats PlainStats;
  Compiler PlainComp(Space, Plain, Costs, InstrumentationSpec(), 16);
  ASSERT_TRUE(PlainComp.compile(0x1000, PlainStats).ok());

  CodeCache Instr(1 << 20, 1 << 20);
  EngineStats InstrStats;
  Compiler InstrComp(Space, Instr, Costs, Spec, 16);
  ASSERT_TRUE(InstrComp.compile(0x1000, InstrStats).ok());

  EXPECT_GT(InstrStats.CompileCycles, PlainStats.CompileCycles);
  EXPECT_GT(Instr.codeBytesUsed(), Plain.codeBytesUsed());
}

TEST(Engine, MatchesInterpreterObservably) {
  TinyWorkload W = makeTinyWorkload(4, 3);
  auto Input = W.allSlotsInput(3);

  auto Native = workloads::runNative(W.Registry, W.App, Input);
  ASSERT_TRUE(Native.ok()) << Native.status().toString();
  auto Translated = workloads::runUnderEngine(W.Registry, W.App, Input);
  ASSERT_TRUE(Translated.ok()) << Translated.status().toString();

  EXPECT_TRUE(Native->observablyEquals(Translated->Run));
  EXPECT_GT(Translated->Run.Cycles, Native->Cycles)
      << "translation must cost something";
}

TEST(Engine, StatsAccounting) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  auto R = workloads::runUnderEngine(W.Registry, W.App,
                                     W.allSlotsInput(2));
  ASSERT_TRUE(R.ok());
  const EngineStats &S = R->Stats;
  EXPECT_GT(S.TracesCompiled, 0u);
  EXPECT_GT(S.CompileCycles, 0u);
  EXPECT_GT(S.DispatchCycles, 0u);
  EXPECT_GT(S.ExecCycles, 0u);
  EXPECT_EQ(S.TracesLoadedFromCache, 0u);
  EXPECT_EQ(S.CacheFlushes, 0u);
  EXPECT_EQ(S.GuestInstsExecuted, R->Run.InstructionsExecuted);
  EXPECT_EQ(S.totalCycles(), R->Run.Cycles);
  EXPECT_EQ(S.vmCycles() + S.translatedCycles() + S.EmulationCycles,
            S.totalCycles());
}

TEST(Engine, SecondIterationReusesTraces) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  auto Once = workloads::runUnderEngine(W.Registry, W.App,
                                        W.allSlotsInput(1));
  auto Many = workloads::runUnderEngine(W.Registry, W.App,
                                        W.allSlotsInput(50));
  ASSERT_TRUE(Once.ok() && Many.ok());
  // 50x the execution discovers at most a few extra paths (the code
  // cache amortizes translation), and executions dwarf compilations.
  EXPECT_LE(Many->Stats.TracesCompiled,
            2 * Once->Stats.TracesCompiled);
  EXPECT_GT(Many->Stats.TraceExecutions,
            10 * Many->Stats.TracesCompiled);
  EXPECT_GT(Many->Run.InstructionsExecuted,
            10 * Once->Run.InstructionsExecuted);
}

TEST(Engine, LinkingReducesDispatches) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  auto Input = W.allSlotsInput(40);

  dbi::EngineOptions Linked;
  auto WithLinks =
      workloads::runUnderEngine(W.Registry, W.App, Input, nullptr,
                                Linked);
  dbi::EngineOptions Unlinked;
  Unlinked.EnableLinking = false;
  auto WithoutLinks =
      workloads::runUnderEngine(W.Registry, W.App, Input, nullptr,
                                Unlinked);
  ASSERT_TRUE(WithLinks.ok() && WithoutLinks.ok());
  EXPECT_TRUE(WithLinks->Run.observablyEquals(WithoutLinks->Run));
  EXPECT_GT(WithLinks->Stats.LinksCreated, 0u);
  EXPECT_EQ(WithoutLinks->Stats.LinksCreated, 0u);
  EXPECT_LT(WithLinks->Stats.DispatchCycles,
            WithoutLinks->Stats.DispatchCycles);
  EXPECT_LT(WithLinks->Run.Cycles, WithoutLinks->Run.Cycles);
}

TEST(Engine, CacheFlushRecoversAndStaysCorrect) {
  TinyWorkload W = makeTinyWorkload(6, 0);
  auto Input = W.allSlotsInput(4);

  auto Reference = workloads::runNative(W.Registry, W.App, Input);
  ASSERT_TRUE(Reference.ok());

  dbi::EngineOptions Tiny;
  Tiny.CodePoolBytes = 3000; // Forces repeated flushes.
  Tiny.DataPoolBytes = 3000;
  auto R = workloads::runUnderEngine(W.Registry, W.App, Input, nullptr,
                                     Tiny);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_GT(R->Stats.CacheFlushes, 0u);
  EXPECT_TRUE(Reference->observablyEquals(R->Run));
  // Flushing forces retranslation of the same code.
  auto Roomy = workloads::runUnderEngine(W.Registry, W.App, Input);
  ASSERT_TRUE(Roomy.ok());
  EXPECT_GT(R->Stats.TracesCompiled, Roomy->Stats.TracesCompiled);
}

TEST(Engine, SyscallsGoThroughEmulation) {
  TinyWorkload W = makeTinyWorkload(1, 0, /*Seed=*/5);
  // Region with yields: rebuild app with syscall pressure.
  workloads::AppDef Def;
  Def.Name = "sysapp";
  Def.Path = "/bin/sysapp";
  workloads::RegionDef Region;
  Region.Name = "r0";
  Region.Blocks = 4;
  Region.InstsPerBlock = 8;
  Region.YieldEveryBlocks = 1;
  Region.Seed = 7;
  Def.Slots.push_back(workloads::FunctionSlot::local(std::move(Region)));
  auto App = workloads::buildExecutable(Def);
  loader::ModuleRegistry Registry;
  auto Input =
      workloads::encodeWorkload({workloads::WorkItem{0, 10}});
  auto R = workloads::runUnderEngine(Registry, App, Input);
  ASSERT_TRUE(R.ok());
  EXPECT_GT(R->Stats.EmulationCycles, 0u);
  EXPECT_GT(R->Run.SyscallCount, 1u);
}

TEST(Tools, BasicBlockCounterSeesAllInstructions) {
  TinyWorkload W = makeTinyWorkload(3, 2);
  auto Input = W.allSlotsInput(5);
  BasicBlockCounterTool Tool;
  auto R = workloads::runUnderEngine(W.Registry, W.App, Input, &Tool);
  ASSERT_TRUE(R.ok());
  // Block-attributed instruction counts must equal execution counts.
  EXPECT_EQ(Tool.totalInstructions(), R->Run.InstructionsExecuted);
  EXPECT_GT(Tool.totalBlocks(), 0u);
  EXPECT_GT(Tool.counts().size(), 4u);
  EXPECT_GT(R->Stats.ToolCycles, 0u);
}

TEST(Tools, InstructionCounterExact) {
  TinyWorkload W = makeTinyWorkload(2, 1);
  auto Input = W.allSlotsInput(3);
  InstructionCounterTool Tool;
  auto R = workloads::runUnderEngine(W.Registry, W.App, Input, &Tool);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Tool.count(), R->Run.InstructionsExecuted);
}

TEST(Tools, MemTraceDeterministicChecksum) {
  TinyWorkload W = makeTinyWorkload(2, 2);
  auto Input = W.allSlotsInput(4);
  MemRefTraceTool A, B;
  auto R1 = workloads::runUnderEngine(W.Registry, W.App, Input, &A);
  auto R2 = workloads::runUnderEngine(W.Registry, W.App, Input, &B);
  ASSERT_TRUE(R1.ok() && R2.ok());
  EXPECT_GT(A.loadCount() + A.storeCount(), 0u);
  EXPECT_EQ(A.loadCount(), B.loadCount());
  EXPECT_EQ(A.storeCount(), B.storeCount());
  EXPECT_EQ(A.checksum(), B.checksum());
}

TEST(Tools, InstrumentationDoesNotChangeResults) {
  TinyWorkload W = makeTinyWorkload(3, 2);
  auto Input = W.allSlotsInput(6);
  auto Plain = workloads::runUnderEngine(W.Registry, W.App, Input);
  BasicBlockCounterTool Tool;
  auto Instr =
      workloads::runUnderEngine(W.Registry, W.App, Input, &Tool);
  ASSERT_TRUE(Plain.ok() && Instr.ok());
  EXPECT_TRUE(Plain->Run.observablyEquals(Instr->Run));
  EXPECT_GT(Instr->Run.Cycles, Plain->Run.Cycles);
  EXPECT_GT(Instr->Stats.CompileCycles, Plain->Stats.CompileCycles);
}

TEST(Tools, KeyHashesDifferAcrossTools) {
  BasicBlockCounterTool Bb;
  MemRefTraceTool Mem;
  InstructionCounterTool Icount;
  NullTool Null;
  EXPECT_NE(Bb.keyHash(), Mem.keyHash());
  EXPECT_NE(Bb.keyHash(), Icount.keyHash());
  EXPECT_NE(Bb.keyHash(), Null.keyHash());
  EXPECT_NE(Null.keyHash(), persist::noToolHash());
}

TEST(CodeCache, EvictOldestCompactsPool) {
  CodeCache Cache(1 << 20, 1 << 20);
  std::vector<TranslatedTrace *> Added;
  for (uint32_t I = 0; I != 4; ++I) {
    auto Offset = Cache.allocateCode(100);
    ASSERT_TRUE(Offset.ok());
    Cache.writeCode(*Offset, std::vector<uint8_t>(100,
                                                  static_cast<uint8_t>(I)));
    auto T = Cache.addTrace(std::make_unique<TranslatedTrace>(
        0x1000 + I * 0x100, 2, *Offset, 100,
        std::vector<TraceExit>{}, false));
    ASSERT_TRUE(T.ok());
    Added.push_back(*T);
  }
  uint64_t GenBefore = Cache.modificationGeneration();
  EXPECT_EQ(Cache.evictOldest(0.5), 2u);
  EXPECT_GT(Cache.modificationGeneration(), GenBefore);
  // Oldest two gone from the map; survivors relocated to pool start.
  EXPECT_EQ(Cache.lookup(0x1000), nullptr);
  EXPECT_EQ(Cache.lookup(0x1100), nullptr);
  ASSERT_EQ(Cache.lookup(0x1200), Added[2]);
  ASSERT_EQ(Cache.lookup(0x1300), Added[3]);
  EXPECT_EQ(Cache.codeBytesUsed(), 200u);
  EXPECT_EQ(Added[2]->poolOffset(), 0u);
  EXPECT_EQ(Added[3]->poolOffset(), 100u);
  // Compaction preserved the bytes.
  EXPECT_EQ(Cache.codeAt(0)[0], 2);
  EXPECT_EQ(Cache.codeAt(100)[0], 3);
}

TEST(CodeCache, EvictOldestUnlinksAcrossTheCut) {
  CodeCache Cache(1 << 20, 1 << 20);
  std::vector<TraceExit> ExitsOld = {
      TraceExit{ExitKind::Direct, 0, 0x2000, nullptr}};
  auto Old = Cache.addTrace(std::make_unique<TranslatedTrace>(
      0x1000, 1, 0, 0, ExitsOld, false));
  std::vector<TraceExit> ExitsNew = {
      TraceExit{ExitKind::Direct, 0, 0x1000, nullptr}};
  auto New = Cache.addTrace(std::make_unique<TranslatedTrace>(
      0x2000, 1, 0, 0, ExitsNew, false));
  ASSERT_TRUE(Old.ok() && New.ok());
  Cache.link(*Old, 0, *New); // old -> new
  Cache.link(*New, 0, *Old); // new -> old
  EXPECT_EQ(Cache.evictOldest(0.5), 1u); // Evicts 0x1000.
  // The survivor's dangling link must be cleared.
  EXPECT_EQ((*New)->exits()[0].Link, nullptr);
  EXPECT_TRUE((*New)->incomingLinks().empty());
}

TEST(Engine, GranularEvictionOutperformsFlushUnderPressure) {
  TinyWorkload W = makeTinyWorkload(8, 0, /*Seed=*/21);
  auto Input = W.allSlotsInput(6);
  auto Reference = workloads::runNative(W.Registry, W.App, Input);
  ASSERT_TRUE(Reference.ok());

  dbi::EngineOptions Flush;
  Flush.CodePoolBytes = 4000;
  Flush.DataPoolBytes = 4000;
  auto FlushRun = workloads::runUnderEngine(W.Registry, W.App, Input,
                                            nullptr, Flush);
  ASSERT_TRUE(FlushRun.ok());
  ASSERT_GT(FlushRun->Stats.CacheFlushes, 0u);

  dbi::EngineOptions Evict = Flush;
  Evict.Eviction = dbi::EvictionPolicy::EvictOldestHalf;
  auto EvictRun = workloads::runUnderEngine(W.Registry, W.App, Input,
                                            nullptr, Evict);
  ASSERT_TRUE(EvictRun.ok());
  EXPECT_GT(EvictRun->Stats.TracesEvicted, 0u);

  // Correctness is identical; granular eviction retranslates less.
  EXPECT_TRUE(Reference->observablyEquals(FlushRun->Run));
  EXPECT_TRUE(Reference->observablyEquals(EvictRun->Run));
  EXPECT_LT(EvictRun->Stats.TracesCompiled,
            FlushRun->Stats.TracesCompiled);
}
