//===- tests/parallel_pipeline_test.cpp - concurrency suite ---------------===//
//
// The parallel persistence pipeline: ThreadPool semantics, the
// TraceInstallQueue worker/engine hand-off, determinism of async prime
// and background finalize across worker counts (EngineStats must be
// bit-identical for --jobs 1/4/16), fault-injected background
// publishes, and the parallel maintenance scans (checkDatabase,
// findCompatible, stats) against their serial baselines.
//
// Built as its own CTest executable (parallel_pipeline_test) so the
// soak modes of scripts/check.sh can run exactly this binary under
// TSan; its tests register in the default ctest tier like any other.
//
//===----------------------------------------------------------------------===//

#include "dbi/InstallQueue.h"
#include "persist/CacheDatabase.h"
#include "persist/DbCheck.h"
#include "persist/DirectoryStore.h"
#include "persist/Session.h"
#include "support/FaultInjector.h"
#include "support/FileSystem.h"
#include "support/ThreadPool.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace pcc;
using namespace pcc::persist;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

/// Every scalar field plus the compile-event timeline: the pipeline's
/// determinism contract is bit-identity, not approximate agreement.
void expectStatsEqual(const dbi::EngineStats &A, const dbi::EngineStats &B,
                      const std::string &Label) {
  EXPECT_EQ(A.CompileCycles, B.CompileCycles) << Label;
  EXPECT_EQ(A.DispatchCycles, B.DispatchCycles) << Label;
  EXPECT_EQ(A.LinkCycles, B.LinkCycles) << Label;
  EXPECT_EQ(A.IndirectCycles, B.IndirectCycles) << Label;
  EXPECT_EQ(A.ExecCycles, B.ExecCycles) << Label;
  EXPECT_EQ(A.ToolCycles, B.ToolCycles) << Label;
  EXPECT_EQ(A.EmulationCycles, B.EmulationCycles) << Label;
  EXPECT_EQ(A.PersistCycles, B.PersistCycles) << Label;
  EXPECT_EQ(A.EvictionCycles, B.EvictionCycles) << Label;
  EXPECT_EQ(A.GuestInstsExecuted, B.GuestInstsExecuted) << Label;
  EXPECT_EQ(A.SyscallCount, B.SyscallCount) << Label;
  EXPECT_EQ(A.TracesCompiled, B.TracesCompiled) << Label;
  EXPECT_EQ(A.TracesLoadedFromCache, B.TracesLoadedFromCache) << Label;
  EXPECT_EQ(A.TracesReused, B.TracesReused) << Label;
  EXPECT_EQ(A.TraceExecutions, B.TraceExecutions) << Label;
  EXPECT_EQ(A.LinksCreated, B.LinksCreated) << Label;
  EXPECT_EQ(A.CacheFlushes, B.CacheFlushes) << Label;
  EXPECT_EQ(A.TracesEvicted, B.TracesEvicted) << Label;
  EXPECT_EQ(A.ModulesInvalidated, B.ModulesInvalidated) << Label;
  EXPECT_EQ(A.TracePayloadsValidated, B.TracePayloadsValidated) << Label;
  EXPECT_EQ(A.TracesDroppedCorrupt, B.TracesDroppedCorrupt) << Label;
  EXPECT_EQ(A.PersistStoreFailures, B.PersistStoreFailures) << Label;
  EXPECT_EQ(A.PersistStoreRetries, B.PersistStoreRetries) << Label;
  EXPECT_EQ(A.PersistCandidatesSkippedIo, B.PersistCandidatesSkippedIo)
      << Label;
  EXPECT_EQ(A.PersistDegraded, B.PersistDegraded) << Label;
  EXPECT_EQ(A.PersistDegradeReason, B.PersistDegradeReason) << Label;
  ASSERT_EQ(A.Timeline.size(), B.Timeline.size()) << Label;
  for (size_t I = 0; I < A.Timeline.size(); ++I) {
    EXPECT_EQ(A.Timeline[I].GuestInstsExecuted,
              B.Timeline[I].GuestInstsExecuted)
        << Label << " timeline[" << I << "]";
    EXPECT_EQ(A.Timeline[I].TraceInsts, B.Timeline[I].TraceInsts)
        << Label << " timeline[" << I << "]";
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool semantics.
//===----------------------------------------------------------------------===//

TEST(ThreadPool, SubmitRunsEveryTask) {
  support::ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.waitAll();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunsInlineAtSubmit) {
  support::ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 0u);
  std::thread::id Runner;
  Pool.submit([&Runner] { Runner = std::this_thread::get_id(); });
  EXPECT_EQ(Runner, std::this_thread::get_id());
  Pool.waitAll(); // Trivially satisfied; must not hang.
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  support::ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(257);
  Pool.parallelFor(Hits.size(),
                   [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForHandlesEdgeSizes) {
  support::ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, [&Count](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0);
  Pool.parallelFor(1, [&Count](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 1);
  // Zero workers: the calling thread drains every index itself.
  support::ThreadPool Inline(0);
  std::vector<int> Order;
  Inline.parallelFor(5, [&Order](size_t I) {
    Order.push_back(static_cast<int>(I));
  });
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForProgressesWhileWorkersAreBusy) {
  // All workers blocked on long tasks: parallelFor must still finish,
  // because the calling thread participates in draining indices.
  support::ThreadPool Pool(2);
  std::atomic<bool> Release{false};
  for (int I = 0; I < 2; ++I)
    Pool.submit([&Release] {
      while (!Release.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  std::atomic<int> Count{0};
  Pool.parallelFor(50, [&Count](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 50);
  Release.store(true);
  Pool.waitAll();
}

TEST(ThreadPool, BackgroundModeDrainsAndReportsDemotions) {
  support::ThreadPool Pool(4, /*Background=*/true);
  EXPECT_EQ(Pool.workerCount(), 4u);
  // Demotion is best-effort (platform- and privilege-dependent), but
  // no more workers than exist can claim it.
  EXPECT_LE(Pool.backgroundWorkerCount(), Pool.workerCount());

  // Demoted workers still drain everything...
  std::atomic<int> Count{0};
  for (int I = 0; I < 200; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.waitAll();
  EXPECT_EQ(Count.load(), 200);

  // ...and parallelFor, with the (non-demoted) caller participating,
  // covers every index exactly once.
  std::vector<std::atomic<int>> Hits(97);
  Pool.parallelFor(Hits.size(),
                   [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;

#ifdef __linux__
  // setpriority(PRIO_PROCESS, tid, 19) needs no privilege: on Linux
  // every worker must demote itself. Workers record the demotion at
  // thread entry, asynchronously with the constructor, so allow them a
  // bounded moment to get there.
  for (int Spin = 0; Spin < 5000 &&
                     Pool.backgroundWorkerCount() < Pool.workerCount();
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Pool.backgroundWorkerCount(), Pool.workerCount());
#endif
}

TEST(ThreadPool, BackgroundZeroWorkersNeverDemotesTheCaller) {
  // Inline mode + background must not touch the calling thread's
  // priority: the count stays zero and submit still runs inline.
  support::ThreadPool Pool(0, /*Background=*/true);
  EXPECT_EQ(Pool.backgroundWorkerCount(), 0u);
  std::thread::id Runner;
  Pool.submit([&Runner] { Runner = std::this_thread::get_id(); });
  EXPECT_EQ(Runner, std::this_thread::get_id());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> Count{0};
  {
    support::ThreadPool Pool(2);
    for (int I = 0; I < 40; ++I)
      Pool.submit([&Count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        Count.fetch_add(1);
      });
  }
  EXPECT_EQ(Count.load(), 40);
}

//===----------------------------------------------------------------------===//
// TraceInstallQueue hand-off protocol.
//===----------------------------------------------------------------------===//

namespace {

dbi::ReadyTrace makeReady(uint32_t Start) {
  dbi::ReadyTrace R;
  R.GuestStart = Start;
  R.CrcOk = true;
  return R;
}

std::vector<dbi::ReadyTrace> makeReadyChunk(std::vector<uint32_t> Starts) {
  std::vector<dbi::ReadyTrace> Out;
  for (uint32_t Start : Starts)
    Out.push_back(makeReady(Start));
  return Out;
}

} // namespace

TEST(TraceInstallQueue, WorkersPublishAndEngineDrains) {
  dbi::TraceInstallQueue Q;
  for (uint32_t Start : {0x100u, 0x200u, 0x300u})
    Q.addJob({Start}, [Start] { return makeReadyChunk({Start}); });
  EXPECT_EQ(Q.jobCount(), 3u);
  while (Q.runNextJob()) {
  }
  auto Ready = Q.drainReady();
  ASSERT_EQ(Ready.size(), 3u);
  EXPECT_TRUE(Q.drainReady().empty()); // Drain consumes.
}

TEST(TraceInstallQueue, TakeForWithdrawsUnclaimedJobs) {
  dbi::TraceInstallQueue Q;
  std::atomic<int> Ran{0};
  Q.addJob({0x100}, [&Ran] {
    Ran.fetch_add(1);
    return makeReadyChunk({0x100});
  });
  // Unclaimed: the engine withdraws the job and validates inline — the
  // job function must never run afterwards.
  EXPECT_TRUE(Q.takeFor(0x100).empty());
  EXPECT_FALSE(Q.runNextJob());
  EXPECT_EQ(Ran.load(), 0);
  // And the result slot stays consumed.
  EXPECT_TRUE(Q.takeFor(0x100).empty());
}

TEST(TraceInstallQueue, TakeForReturnsPublishedResultOnce) {
  dbi::TraceInstallQueue Q;
  Q.addJob({0x100}, [] { return makeReadyChunk({0x100}); });
  EXPECT_TRUE(Q.runNextJob());
  auto R = Q.takeFor(0x100);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].GuestStart, 0x100u);
  EXPECT_TRUE(R[0].CrcOk);
  EXPECT_TRUE(Q.takeFor(0x100).empty());
  EXPECT_TRUE(Q.takeFor(0x999).empty()); // Never existed.
}

TEST(TraceInstallQueue, TakeForReturnsWholeChunkForAnyMember) {
  dbi::TraceInstallQueue Q;
  Q.addJob({0x100, 0x200, 0x300},
           [] { return makeReadyChunk({0x100, 0x200, 0x300}); });
  EXPECT_EQ(Q.jobCount(), 1u);
  EXPECT_TRUE(Q.runNextJob());
  // Asking for any chunk member hands over the whole published chunk —
  // the engine stashes the mates for their own first executions.
  auto R = Q.takeFor(0x200);
  ASSERT_EQ(R.size(), 3u);
  EXPECT_EQ(R[0].GuestStart, 0x100u);
  EXPECT_EQ(R[1].GuestStart, 0x200u);
  EXPECT_EQ(R[2].GuestStart, 0x300u);
  // The chunk is consumed as a unit.
  EXPECT_TRUE(Q.takeFor(0x100).empty());
  EXPECT_TRUE(Q.takeFor(0x300).empty());
  EXPECT_TRUE(Q.drainReady().empty());
}

TEST(TraceInstallQueue, TakeForNeverBlocksOnAnInFlightJob) {
  dbi::TraceInstallQueue Q;
  std::atomic<bool> Entered{false};
  std::atomic<bool> Release{false};
  Q.addJob({0x100}, [&Entered, &Release] {
    Entered.store(true);
    while (!Release.load())
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    return makeReadyChunk({0x100});
  });
  std::thread Worker([&Q] { Q.runNextJob(); });
  while (!Entered.load())
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  // The job is claimed and its worker deliberately stuck: takeFor must
  // return empty instead of waiting (the engine validates inline; a
  // background-priority worker must never be able to stall the run).
  EXPECT_TRUE(Q.takeFor(0x100).empty());
  Release.store(true);
  Worker.join();
  // The late result still publishes; the engine would drain it and
  // ignore it against the already-materialized trace.
  auto Ready = Q.drainReady();
  ASSERT_EQ(Ready.size(), 1u);
  EXPECT_EQ(Ready[0].GuestStart, 0x100u);
}

TEST(TraceInstallQueue, CancelPendingStopsWorkersAndQuiesces) {
  dbi::TraceInstallQueue Q;
  std::atomic<int> Ran{0};
  for (uint32_t Start = 0; Start < 8; ++Start)
    Q.addJob({0x100 + Start}, [&Ran, Start] {
      Ran.fetch_add(1);
      return makeReadyChunk({0x100 + Start});
    });
  Q.cancelPending();
  EXPECT_FALSE(Q.runNextJob());
  Q.waitInFlight(); // Nothing in flight: returns immediately.
  EXPECT_EQ(Ran.load(), 0);
  EXPECT_TRUE(Q.drainReady().empty());
}

//===----------------------------------------------------------------------===//
// Async prime determinism: EngineStats bit-identical across job counts.
//===----------------------------------------------------------------------===//

namespace {

/// One warm persistent run of \p W against a database primed by a cold
/// run, with \p Workers pipeline threads (0 = fully synchronous).
ErrorOr<PersistentRunResult>
warmRunWithWorkers(const TinyWorkload &W, const std::vector<uint8_t> &Input,
                   size_t Workers, bool Pic = false, uint64_t AslrSeed = 0,
                   uint64_t WarmAslrSeed = 0) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  loader::BasePolicy Policy = (AslrSeed || WarmAslrSeed)
                                  ? loader::BasePolicy::Randomized
                                  : loader::BasePolicy::Fixed;
  PersistOptions ColdOpts;
  ColdOpts.PositionIndependent = Pic;
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       ColdOpts, nullptr,
                                       dbi::EngineOptions(), Policy,
                                       AslrSeed);
  if (!Cold)
    return Cold.status();

  std::unique_ptr<support::ThreadPool> Pool;
  PersistOptions WarmOpts;
  WarmOpts.PositionIndependent = Pic;
  if (Workers > 0) {
    Pool = std::make_unique<support::ThreadPool>(Workers);
    WarmOpts.Pool = Pool.get();
  }
  return workloads::runPersistent(W.Registry, W.App, Input, Db, WarmOpts,
                                  nullptr, dbi::EngineOptions(), Policy,
                                  WarmAslrSeed);
}

} // namespace

TEST(AsyncPrime, StatsBitIdenticalAcrossWorkerCounts) {
  TinyWorkload W = makeTinyWorkload(6, 3);
  auto Input = W.allSlotsInput(3);

  auto Jobs1 = warmRunWithWorkers(W, Input, 0);
  ASSERT_TRUE(Jobs1.ok()) << Jobs1.status().toString();
  EXPECT_TRUE(Jobs1->Prime.CacheFound);
  EXPECT_GT(Jobs1->Stats.TracesReused, 0u);
  EXPECT_EQ(Jobs1->Prime.PayloadJobsQueued, 0u);

  for (size_t Workers : {4u, 16u}) {
    auto JobsN = warmRunWithWorkers(W, Input, Workers);
    ASSERT_TRUE(JobsN.ok()) << JobsN.status().toString();
    EXPECT_TRUE(JobsN->Prime.CacheFound);
    EXPECT_GT(JobsN->Prime.PayloadJobsQueued, 0u);
    std::string Label = "workers=" + std::to_string(Workers);
    EXPECT_TRUE(Jobs1->Run.observablyEquals(JobsN->Run)) << Label;
    expectStatsEqual(Jobs1->Stats, JobsN->Stats, Label);
    EXPECT_EQ(Jobs1->Prime.TracesInstalled, JobsN->Prime.TracesInstalled)
        << Label;
    EXPECT_EQ(Jobs1->Prime.LinksRestored, JobsN->Prime.LinksRestored)
        << Label;
  }
}

TEST(AsyncPrime, StatsBitIdenticalUnderPicRebase) {
  // Different warm-run library base: every payload job carries a
  // non-zero rebase delta, exercising the worker-side immediate rebase
  // against the engine's inline one.
  TinyWorkload W = makeTinyWorkload(4, 4);
  auto Input = W.allSlotsInput(2);

  auto Jobs1 = warmRunWithWorkers(W, Input, 0, /*Pic=*/true,
                                  /*AslrSeed=*/7, /*WarmAslrSeed=*/99);
  ASSERT_TRUE(Jobs1.ok()) << Jobs1.status().toString();
  EXPECT_TRUE(Jobs1->Prime.CacheFound);

  auto Jobs8 = warmRunWithWorkers(W, Input, 8, /*Pic=*/true,
                                  /*AslrSeed=*/7, /*WarmAslrSeed=*/99);
  ASSERT_TRUE(Jobs8.ok()) << Jobs8.status().toString();
  EXPECT_TRUE(Jobs1->Run.observablyEquals(Jobs8->Run));
  expectStatsEqual(Jobs1->Stats, Jobs8->Stats, "pic-rebase");
}

TEST(AsyncPrime, EagerValidateMaterializesEverythingAtPrime) {
  TinyWorkload W = makeTinyWorkload(4, 0);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  PersistOptions Opts;
  Opts.EagerValidate = true;
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  // Every installed payload was validated up front, and the guest
  // still behaves identically.
  EXPECT_EQ(Warm->Stats.TracePayloadsValidated,
            Warm->Prime.TracesInstalled);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

//===----------------------------------------------------------------------===//
// Background finalize: fault injection and the wait() barrier.
//===----------------------------------------------------------------------===//

TEST(BackgroundFinalize, PublishLandsAndNextRunPrimesFromIt) {
  TinyWorkload W = makeTinyWorkload(4, 2);
  auto Input = W.allSlotsInput(2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  support::ThreadPool Pool(4);
  PersistOptions Opts;
  Opts.Pool = &Pool;
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_GT(Warm->Stats.TracesReused, 0u);
}

TEST(BackgroundFinalize, BreakerDegradesIdenticallyToSyncPath) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  auto Input = W.allSlotsInput(2);

  // Sync baseline under a deterministic always-fail plan.
  dbi::EngineStats SyncStats;
  {
    TempDir Dir;
    CacheDatabase Db(Dir.path());
    FaultScope Scope;
    FaultInjector::instance().armProbability(FaultOp::Enospc, 1.0);
    auto R = workloads::runPersistent(W.Registry, W.App, Input, Db);
    ASSERT_TRUE(R.ok()) << R.status().toString();
    EXPECT_TRUE(R->Stats.PersistDegraded);
    SyncStats = R->Stats;
  }
  // Same plan, publish on the pool: the degradation, its reason and
  // the failure counts must merge back identically at wait().
  {
    TempDir Dir;
    CacheDatabase Db(Dir.path());
    support::ThreadPool Pool(4);
    FaultScope Scope;
    FaultInjector::instance().armProbability(FaultOp::Enospc, 1.0);
    PersistOptions Opts;
    Opts.Pool = &Pool;
    auto R = workloads::runPersistent(W.Registry, W.App, Input, Db, Opts);
    ASSERT_TRUE(R.ok()) << R.status().toString();
    EXPECT_TRUE(R->Stats.PersistDegraded);
    EXPECT_EQ(R->Stats.PersistStoreFailures,
              SyncStats.PersistStoreFailures);
    // The reason embeds the per-run temp path, so compare the stable
    // part: both paths failed on the same injected error.
    EXPECT_NE(R->Stats.PersistDegradeReason.find("no space left"),
              std::string::npos)
        << R->Stats.PersistDegradeReason;
  }
}

TEST(BackgroundFinalize, FailFastSurfacesTheStoreErrorFromWait) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  support::ThreadPool Pool(2);
  FaultScope Scope;
  FaultInjector::instance().armProbability(FaultOp::Enospc, 1.0);
  PersistOptions Opts;
  Opts.FailFast = true;
  Opts.Pool = &Pool;
  auto R = workloads::runPersistent(W.Registry, W.App,
                                    W.allSlotsInput(1), Db, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::IoError);
}

//===----------------------------------------------------------------------===//
// Parallel maintenance: identical reports at any worker count.
//===----------------------------------------------------------------------===//

namespace {

/// A TinyWorkload under a distinct app identity, so each populates its
/// own cache slot.
TinyWorkload makeNamedWorkload(const std::string &Name, uint64_t Seed) {
  TinyWorkload W;
  W.NumLocal = 3;
  workloads::AppDef Def;
  Def.Name = Name;
  Def.Path = "/bin/" + Name;
  for (uint32_t I = 0; I != W.NumLocal; ++I) {
    workloads::RegionDef Region;
    Region.Name = "local" + std::to_string(I);
    Region.Blocks = 4;
    Region.InstsPerBlock = 8;
    Region.Seed = Seed + I;
    Def.Slots.push_back(workloads::FunctionSlot::local(std::move(Region)));
  }
  W.App = workloads::buildExecutable(Def);
  return W;
}

/// Populates \p Dir with several caches (distinct apps), one of them
/// payload-corrupt.
void populateDatabase(const std::string &Dir) {
  CacheDatabase Db(Dir);
  for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
    TinyWorkload W =
        makeNamedWorkload("app" + std::to_string(Seed), Seed * 10);
    auto R = workloads::runPersistent(W.Registry, W.App,
                                      W.allSlotsInput(1), Db);
    ASSERT_TRUE(R.ok()) << R.status().toString();
  }
  // Flip a byte near the end of one file: payload damage that header
  // and index scans miss but the deep check catches.
  auto Names = listDirectory(Dir);
  ASSERT_TRUE(Names.ok());
  for (const std::string &Name : *Names)
    if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".pcc") {
      auto Bytes = readFile(Dir + "/" + Name);
      ASSERT_TRUE(Bytes.ok());
      ASSERT_GT(Bytes->size(), 200u);
      (*Bytes)[Bytes->size() / 2] ^= 0xff;
      ASSERT_TRUE(writeFileAtomic(Dir + "/" + Name, *Bytes).ok());
      break;
    }
}

} // namespace

TEST(ParallelMaintenance, CheckDatabaseReportMatchesSerial) {
  TempDir Dir;
  populateDatabase(Dir.path());

  auto Serial = checkDatabase(Dir.path());
  ASSERT_TRUE(Serial.ok()) << Serial.status().toString();
  EXPECT_GE(Serial->FilesScanned, 4u);

  support::ThreadPool Pool(4);
  DbCheckOptions Opts;
  Opts.Pool = &Pool;
  auto Parallel = checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Parallel.ok()) << Parallel.status().toString();

  EXPECT_EQ(Serial->FilesScanned, Parallel->FilesScanned);
  EXPECT_EQ(Serial->FilesClean, Parallel->FilesClean);
  EXPECT_EQ(Serial->FilesCorrupt, Parallel->FilesCorrupt);
  EXPECT_EQ(Serial->FilesUnreadable, Parallel->FilesUnreadable);
  EXPECT_EQ(Serial->TracesDropped, Parallel->TracesDropped);
  ASSERT_EQ(Serial->Files.size(), Parallel->Files.size());
  for (size_t I = 0; I < Serial->Files.size(); ++I) {
    EXPECT_EQ(Serial->Files[I].Name, Parallel->Files[I].Name);
    EXPECT_EQ(Serial->Files[I].State, Parallel->Files[I].State);
    EXPECT_EQ(Serial->Files[I].Detail, Parallel->Files[I].Detail);
    EXPECT_EQ(Serial->Files[I].TracesKept, Parallel->Files[I].TracesKept);
    EXPECT_EQ(Serial->Files[I].TracesDropped,
              Parallel->Files[I].TracesDropped);
  }
}

TEST(ParallelMaintenance, ParallelRepairFixesTheDatabase) {
  TempDir Dir;
  populateDatabase(Dir.path());

  support::ThreadPool Pool(4);
  DbCheckOptions Opts;
  Opts.Repair = true;
  Opts.Pool = &Pool;
  auto Repaired = checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Repaired.ok()) << Repaired.status().toString();
  EXPECT_GE(Repaired->FilesRepaired + Repaired->FilesQuarantined, 1u);

  auto After = checkDatabase(Dir.path());
  ASSERT_TRUE(After.ok());
  EXPECT_TRUE(After->clean());
}

TEST(ParallelMaintenance, ScanPoolKeepsStatsAndFindCompatibleIdentical) {
  TempDir Dir;
  populateDatabase(Dir.path());
  DirectoryStore Store(Dir.path());
  Store.setAutoQuarantine(false);

  auto SerialStats = Store.stats();
  ASSERT_TRUE(SerialStats.ok());
  auto SerialMatches =
      Store.findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(SerialMatches.ok());
  EXPECT_GE(SerialMatches->size(), 3u);

  support::ThreadPool Pool(4);
  Store.setScanPool(&Pool);
  auto ParallelStats = Store.stats();
  ASSERT_TRUE(ParallelStats.ok());
  auto ParallelMatches =
      Store.findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(ParallelMatches.ok());

  EXPECT_EQ(SerialStats->CacheFiles, ParallelStats->CacheFiles);
  EXPECT_EQ(SerialStats->CorruptFiles, ParallelStats->CorruptFiles);
  EXPECT_EQ(SerialStats->UnreadableFiles, ParallelStats->UnreadableFiles);
  EXPECT_EQ(SerialStats->DiskBytes, ParallelStats->DiskBytes);
  EXPECT_EQ(SerialStats->CodeBytes, ParallelStats->CodeBytes);
  EXPECT_EQ(SerialStats->DataBytes, ParallelStats->DataBytes);
  EXPECT_EQ(SerialStats->Traces, ParallelStats->Traces);
  EXPECT_EQ(*SerialMatches, *ParallelMatches);
}
