//===- tests/fault_injection_test.cpp - fault tolerance, end to end -------===//
//
// The robustness suite: everything that must keep working when the host
// filesystem misbehaves. Injector semantics, per-operation write-path
// failure modes, publisher lock retry, the quarantine lifecycle, the
// session circuit breaker, degraded end-to-end runs (unwritable and
// all-corrupt databases), pcc-dbcheck's check/repair passes, and a
// multi-process publish storm under a probabilistic fault plan.
//
// Built as its own CTest executable (fault_injection_test) so the soak
// modes of scripts/check.sh can run exactly this binary under ASan and
// TSan.
//
//===----------------------------------------------------------------------===//

#include "persist/CacheDatabase.h"
#include "persist/DbCheck.h"
#include "persist/DirectoryStore.h"
#include "persist/MemoryStore.h"
#include "persist/Session.h"
#include "replay/Recorder.h"
#include "replay/Replay.h"
#include "support/FaultInjector.h"
#include "support/FileLock.h"
#include "support/FileSystem.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define PCC_TEST_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace pcc;
using namespace pcc::persist;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

/// A valid single-module cache whose traces start at the given guest
/// addresses.
CacheFile makeFileWithStarts(std::initializer_list<uint32_t> Starts,
                             uint32_t Generation = 1) {
  CacheFile File;
  File.EngineHash = dbi::engineVersionHash();
  File.ToolHash = noToolHash();
  File.Generation = Generation;
  ModuleKey Key;
  Key.Path = "/bin/x";
  Key.Base = 0x400000;
  Key.Size = 0x10000;
  Key.FullHash = 0x1111;
  File.Modules.push_back(Key);
  for (uint32_t Start : Starts) {
    TraceRecord Trace;
    Trace.GuestStart = Start;
    Trace.GuestInstCount = 4;
    Trace.Code.assign(64, static_cast<uint8_t>(Start & 0xff));
    File.Traces.push_back(std::move(Trace));
  }
  return File;
}

/// Flips one byte at \p Offset from the end of the file (negative
/// indexing into the payload/header without knowing the exact layout).
void flipByteFromEnd(const std::string &Path, size_t Offset) {
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  ASSERT_GT(Bytes->size(), Offset);
  (*Bytes)[Bytes->size() - 1 - Offset] ^= 0xff;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());
}

/// Flips one byte at absolute \p Offset (header corruption).
void flipByteAt(const std::string &Path, size_t Offset) {
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  ASSERT_GT(Bytes->size(), Offset);
  (*Bytes)[Offset] ^= 0xff;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());
}

/// Path of the single .pcc file in \p Dir.
std::string soleCachePath(const std::string &Dir) {
  auto Names = listDirectory(Dir);
  EXPECT_TRUE(Names.ok());
  std::string Found;
  if (Names)
    for (const std::string &Name : *Names)
      if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".pcc")
        Found = Dir + "/" + Name;
  EXPECT_FALSE(Found.empty());
  return Found;
}

} // namespace

//===----------------------------------------------------------------------===//
// Injector semantics.
//===----------------------------------------------------------------------===//

TEST(FaultInjectorUnit, CountRulePassesThenFailsThenDisarms) {
  FaultScope Scope;
  FaultInjector &I = FaultInjector::instance();
  I.armCount(FaultOp::Read, /*AfterCalls=*/2, /*Times=*/2);
  EXPECT_TRUE(I.enabled());
  EXPECT_FALSE(I.shouldFail(FaultOp::Read));
  EXPECT_FALSE(I.shouldFail(FaultOp::Read));
  EXPECT_TRUE(I.shouldFail(FaultOp::Read));
  EXPECT_TRUE(I.shouldFail(FaultOp::Read));
  EXPECT_FALSE(I.shouldFail(FaultOp::Read)); // Rule disarmed itself.
  EXPECT_FALSE(I.enabled());
  EXPECT_EQ(I.injectedCount(FaultOp::Read), 2u);
  EXPECT_EQ(I.totalInjected(), 2u);
}

TEST(FaultInjectorUnit, ProbabilityStreamIsDeterministicPerSeed) {
  FaultScope Scope;
  FaultInjector &I = FaultInjector::instance();
  auto draw = [&](uint64_t Seed) {
    I.reset();
    I.armProbability(FaultOp::Enospc, 0.5, Seed);
    std::vector<bool> Draws;
    for (int N = 0; N != 64; ++N)
      Draws.push_back(I.shouldFail(FaultOp::Enospc));
    return Draws;
  };
  auto A = draw(99), B = draw(99), C = draw(100);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C); // 2^-64 flake odds: different seed, different stream.

  // Degenerate probabilities are exact, not approximate.
  I.reset();
  I.armProbability(FaultOp::Read, 0.0);
  I.armProbability(FaultOp::FsyncFail, 1.0);
  for (int N = 0; N != 32; ++N) {
    EXPECT_FALSE(I.shouldFail(FaultOp::Read));
    EXPECT_TRUE(I.shouldFail(FaultOp::FsyncFail));
  }
}

TEST(FaultInjectorUnit, PlanParsingArmsRulesAndRejectsGarbage) {
  FaultScope Scope;
  FaultInjector &I = FaultInjector::instance();
  ASSERT_TRUE(
      I.configureFromPlan("seed:7, enospc:0.25, lock:@3").ok());
  EXPECT_TRUE(I.enabled());
  // "@3": pass three acquisitions, fail the fourth, disarm.
  EXPECT_FALSE(I.shouldFail(FaultOp::LockTimeout));
  EXPECT_FALSE(I.shouldFail(FaultOp::LockTimeout));
  EXPECT_FALSE(I.shouldFail(FaultOp::LockTimeout));
  EXPECT_TRUE(I.shouldFail(FaultOp::LockTimeout));
  EXPECT_FALSE(I.shouldFail(FaultOp::LockTimeout));

  EXPECT_EQ(I.configureFromPlan("bogus:0.5").code(),
            ErrorCode::InvalidArgument);
  EXPECT_EQ(I.configureFromPlan("enospc:1.5").code(),
            ErrorCode::InvalidArgument);
  EXPECT_EQ(I.configureFromPlan("enospc").code(),
            ErrorCode::InvalidArgument);
  EXPECT_EQ(I.configureFromPlan("seed:x").code(),
            ErrorCode::InvalidArgument);
  EXPECT_TRUE(I.configureFromPlan("").ok());
}

TEST(FaultInjectorUnit, PlanStringRoundTripsIncludingConsumedState) {
  FaultScope Scope;
  FaultInjector &I = FaultInjector::instance();
  ASSERT_TRUE(
      I.configureFromPlan("seed:7,enospc:0.25,lock:@3+2,read:@1").ok());
  // Drain part of every stream so the snapshot is mid-consumption: the
  // probability rule has advanced its generator, the count rules have
  // spent passes (and, for lock, one failure).
  for (int N = 0; N != 5; ++N)
    (void)I.shouldFail(FaultOp::Enospc);
  for (int N = 0; N != 4; ++N)
    (void)I.shouldFail(FaultOp::LockTimeout);
  (void)I.shouldFail(FaultOp::Read);

  // Parse -> print -> parse is a fixpoint: re-arming from the snapshot
  // and snapshotting again yields the identical plan string.
  std::string Snapshot = I.planString();
  ASSERT_FALSE(Snapshot.empty());
  auto drainFuture = [&I]() {
    std::vector<bool> Draws;
    for (int N = 0; N != 64; ++N) {
      Draws.push_back(I.shouldFail(FaultOp::Enospc));
      Draws.push_back(I.shouldFail(FaultOp::LockTimeout));
      Draws.push_back(I.shouldFail(FaultOp::Read));
    }
    return Draws;
  };
  std::vector<bool> Original = drainFuture();

  I.reset();
  ASSERT_TRUE(I.configureFromPlan(Snapshot).ok());
  EXPECT_EQ(I.planString(), Snapshot);

  // And the re-armed rules' future decisions match the original's bit
  // for bit — consumed state included.
  EXPECT_EQ(drainFuture(), Original);
}

//===----------------------------------------------------------------------===//
// Write-path failure modes, one operation at a time.
//===----------------------------------------------------------------------===//

class AtomicWriteFaults : public ::testing::Test {
protected:
  bool dirHasTemp() {
    auto Names = listDirectory(Dir.path());
    EXPECT_TRUE(Names.ok());
    for (const std::string &Name : *Names)
      if (isAtomicTempName(Name))
        return true;
    return false;
  }
  TempDir Dir;
  FaultScope Scope;
  std::vector<uint8_t> Payload = std::vector<uint8_t>(256, 0xAB);
};

TEST_F(AtomicWriteFaults, EnospcFailsCleanlyBeforeTheTempExists) {
  FaultInjector::instance().armCount(FaultOp::Enospc);
  Status S = writeFileAtomic(Dir.path() + "/x", Payload);
  EXPECT_EQ(S.code(), ErrorCode::IoError);
  EXPECT_FALSE(fileExists(Dir.path() + "/x"));
  EXPECT_FALSE(dirHasTemp());
}

TEST_F(AtomicWriteFaults, ShortWriteFailsCleanlyAndRemovesTheTemp) {
  FaultInjector::instance().armCount(FaultOp::ShortWrite);
  Status S = writeFileAtomic(Dir.path() + "/x", Payload);
  EXPECT_EQ(S.code(), ErrorCode::IoError);
  EXPECT_FALSE(fileExists(Dir.path() + "/x"));
  EXPECT_FALSE(dirHasTemp());
}

TEST_F(AtomicWriteFaults, TornWriteOrphansAPartialTemp) {
  FaultInjector::instance().armCount(FaultOp::TornWrite);
  Status S = writeFileAtomic(Dir.path() + "/x", Payload);
  EXPECT_EQ(S.code(), ErrorCode::IoError);
  EXPECT_FALSE(fileExists(Dir.path() + "/x")); // Slot never touched...
  EXPECT_TRUE(dirHasTemp());                   // ...but debris remains.
}

TEST_F(AtomicWriteFaults, FsyncFailureOnlyMattersWhenSyncRequested) {
  FaultInjector::instance().armCount(FaultOp::FsyncFail, 0, /*Times=*/2);
  Status Synced =
      writeFileAtomic(Dir.path() + "/x", Payload, /*SyncToDisk=*/true);
  EXPECT_EQ(Synced.code(), ErrorCode::IoError);
  EXPECT_FALSE(dirHasTemp());
  // Without SyncToDisk nothing calls fsync, so the armed rule is never
  // even consulted and the write lands.
  Status Unsynced = writeFileAtomic(Dir.path() + "/y", Payload);
  EXPECT_TRUE(Unsynced.ok());
  EXPECT_TRUE(fileExists(Dir.path() + "/y"));
}

TEST_F(AtomicWriteFaults, RenameFailureRemovesTheTemp) {
  FaultInjector::instance().armCount(FaultOp::RenameFail);
  Status S = writeFileAtomic(Dir.path() + "/x", Payload);
  EXPECT_EQ(S.code(), ErrorCode::IoError);
  EXPECT_FALSE(fileExists(Dir.path() + "/x"));
  EXPECT_FALSE(dirHasTemp());
}

TEST_F(AtomicWriteFaults, ReadFaultsSurfaceAsIoError) {
  ASSERT_TRUE(writeFileAtomic(Dir.path() + "/x", Payload).ok());
  FaultInjector::instance().armCount(FaultOp::Read, 0, /*Times=*/3);
  EXPECT_EQ(readFile(Dir.path() + "/x").status().code(),
            ErrorCode::IoError);
  EXPECT_EQ(readFileRange(Dir.path() + "/x", 0, 16).status().code(),
            ErrorCode::IoError);
  EXPECT_EQ(MappedFile::open(Dir.path() + "/x").status().code(),
            ErrorCode::IoError);
  auto Clean = readFile(Dir.path() + "/x");
  ASSERT_TRUE(Clean.ok());
  EXPECT_EQ(*Clean, Payload);
}

//===----------------------------------------------------------------------===//
// Publisher lock retry.
//===----------------------------------------------------------------------===//

TEST(LockRetry, PublishAbsorbsTransientLockTimeouts) {
  TempDir Dir;
  FaultScope Scope;
  DirectoryStore Store(Dir.path());
  RetryPolicy Tight;
  Tight.BaseDelayMicros = 50;
  Tight.MaxDelayMicros = 200;
  Store.setRetryPolicy(Tight);

  // The first three acquisition attempts time out; backoff retries past
  // them and the publish lands.
  FaultInjector::instance().armCount(FaultOp::LockTimeout, 0,
                                     /*Times=*/3);
  auto R = Store.publish(7, makeFileWithStarts({0x400000}), 0);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_GE(R->LockRetries, 3u);
  EXPECT_TRUE(Store.exists(7));
}

TEST(LockRetry, PublishGivesUpWhenContentionOutlastsTheBudget) {
  TempDir Dir;
  FaultScope Scope;
  DirectoryStore Store(Dir.path());
  RetryPolicy Tight;
  Tight.MaxAttempts = 4;
  Tight.BaseDelayMicros = 50;
  Tight.MaxDelayMicros = 200;
  Store.setRetryPolicy(Tight);

  FaultInjector::instance().armCount(FaultOp::LockTimeout, 0,
                                     /*Times=*/1000);
  auto R = Store.publish(7, makeFileWithStarts({0x400000}), 0);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::WouldBlock);
  EXPECT_FALSE(Store.exists(7));
}

//===----------------------------------------------------------------------===//
// Quarantine lifecycle.
//===----------------------------------------------------------------------===//

TEST(Quarantine, CorruptOpenAutoQuarantinesWithReason) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  ASSERT_TRUE(Store.put(3, makeFileWithStarts({0x400000})).ok());
  std::string Ref = Store.refFor(3);
  flipByteAt(Ref, 10); // Header byte: CRC mismatch, InvalidFormat.

  auto Opened = Store.openRef(Ref, CacheFileView::Depth::Index);
  ASSERT_FALSE(Opened.ok());
  EXPECT_EQ(Opened.status().code(), ErrorCode::InvalidFormat);
  EXPECT_FALSE(Store.exists(3)); // Pulled aside, not left in place.

  auto Entries = Store.quarantined();
  ASSERT_TRUE(Entries.ok());
  ASSERT_EQ(Entries->size(), 1u);
  EXPECT_EQ(Entries->front().Name, Ref.substr(Dir.path().size() + 1));
  EXPECT_FALSE(Entries->front().Reason.empty());
  EXPECT_NE(Entries->front().Bytes, 0u);
}

TEST(Quarantine, ReportOnlyModeLeavesTheCorpseInPlace) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  Store.setAutoQuarantine(false);
  ASSERT_TRUE(Store.put(3, makeFileWithStarts({0x400000})).ok());
  flipByteAt(Store.refFor(3), 10);

  auto Opened = Store.openRef(Store.refFor(3),
                              CacheFileView::Depth::Index);
  EXPECT_EQ(Opened.status().code(), ErrorCode::InvalidFormat);
  EXPECT_TRUE(fileExists(Store.refFor(3)));
  auto Entries = Store.quarantined();
  ASSERT_TRUE(Entries.ok());
  EXPECT_TRUE(Entries->empty());
}

TEST(Quarantine, VersionMismatchIsNotQuarantineMaterial) {
  // A cache for some other engine build is healthy, just not ours:
  // scans skip it but must never pull it aside.
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  CacheFile Alien = makeFileWithStarts({0x400000});
  Alien.EngineHash ^= 0xDEAD;
  ASSERT_TRUE(Store.put(4, Alien).ok());

  auto Matches =
      Store.findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(Matches.ok());
  EXPECT_TRUE(Matches->empty());
  EXPECT_TRUE(Store.exists(4));
  auto Entries = Store.quarantined();
  ASSERT_TRUE(Entries.ok());
  EXPECT_TRUE(Entries->empty());
}

TEST(Quarantine, RestoreAndPurgeRoundTrip) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  ASSERT_TRUE(Store.put(3, makeFileWithStarts({0x400000})).ok());
  std::string Name = Store.refFor(3).substr(Dir.path().size() + 1);
  ASSERT_TRUE(Store.quarantineRef(Store.refFor(3), "testing").ok());
  EXPECT_FALSE(Store.exists(3));

  // Occupied slot blocks restore (a healthy replacement arrived).
  ASSERT_TRUE(Store.put(3, makeFileWithStarts({0x400040})).ok());
  EXPECT_EQ(Store.restoreQuarantined(Name).code(),
            ErrorCode::InvalidArgument);

  ASSERT_TRUE(Store.retire(3).ok());
  ASSERT_TRUE(Store.restoreQuarantined(Name).ok());
  EXPECT_TRUE(Store.exists(3));
  EXPECT_EQ(Store.restoreQuarantined(Name).code(), ErrorCode::NotFound);

  ASSERT_TRUE(Store.quarantineRef(Store.refFor(3), "again").ok());
  auto Purged = Store.purgeQuarantine();
  ASSERT_TRUE(Purged.ok());
  EXPECT_EQ(*Purged, 1u);
  auto Entries = Store.quarantined();
  ASSERT_TRUE(Entries.ok());
  EXPECT_TRUE(Entries->empty());
}

TEST(Quarantine, RecordedInvalidFormatQuarantineReplaysIdentically) {
  // An auto-quarantine observed under recording must leave evidence
  // that replays to the very same verdict: same cache, same
  // machine-readable reason code, bit-identical run.
  FaultScope Scope;
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());
  flipByteAt(soleCachePath(Dir.path()), 10); // Header: InvalidFormat.

  replay::RecordSpec Spec;
  Spec.LogName = "evidence.pcrr";
  auto Rec = replay::recordRun(W.Registry, W.App, Input, Db,
                               PersistOptions(), Spec);
  ASSERT_TRUE(Rec.ok()) << Rec.status().toString();
  ASSERT_EQ(Rec->Quarantines.size(), 1u);
  EXPECT_EQ(Rec->Quarantines[0].Code,
            static_cast<uint8_t>(QuarantineReasonCode::InvalidFormat));

  // The quarantine entry names the recording, and the log itself was
  // attached next to the quarantined corpse.
  auto Entries = Db.quarantined();
  ASSERT_TRUE(Entries.ok());
  ASSERT_EQ(Entries->size(), 1u);
  EXPECT_EQ(Entries->front().Code, QuarantineReasonCode::InvalidFormat);
  EXPECT_EQ(Entries->front().ReplayLog, "evidence.pcrr");
  auto Attached =
      Db.backend()->readQuarantineAttachment("evidence.pcrr");
  ASSERT_TRUE(Attached.ok()) << Attached.status().toString();
  auto Parsed = replay::deserializeLog(*Attached);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();

  auto Out = replay::replayRun(*Parsed, replay::ReplayOptions());
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(replay::compareToRecording(*Parsed, *Out), "");
  ASSERT_EQ(Out->Quarantines.size(), 1u);
  EXPECT_EQ(Out->Quarantines[0].RefName, Rec->Quarantines[0].RefName);
  EXPECT_EQ(Out->Quarantines[0].Code, Rec->Quarantines[0].Code);
}

TEST(Quarantine, MemoryStoreSupportsTheSameLifecycle) {
  MemoryStore Store;
  ASSERT_TRUE(Store.put(3, makeFileWithStarts({0x400000})).ok());
  ASSERT_TRUE(Store.quarantineRef(Store.refFor(3), "testing").ok());
  EXPECT_FALSE(Store.exists(3));
  auto Entries = Store.quarantined();
  ASSERT_TRUE(Entries.ok());
  ASSERT_EQ(Entries->size(), 1u);
  EXPECT_EQ(Entries->front().Reason, "testing");

  std::string Name = Entries->front().Name;
  ASSERT_TRUE(Store.restoreQuarantined(Name).ok());
  EXPECT_TRUE(Store.exists(3));
  auto Stats = Store.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->QuarantinedFiles, 0u);
}

//===----------------------------------------------------------------------===//
// Session circuit breaker and degraded end-to-end runs.
//===----------------------------------------------------------------------===//

TEST(CircuitBreaker, EnospcDegradesTheRunNotTheGuest) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);

  auto Reference = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Reference.ok());
  ASSERT_TRUE(Db.clear().ok());

  FaultScope Scope;
  FaultInjector::instance().armProbability(FaultOp::Enospc, 1.0);
  auto R = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_TRUE(R->Stats.PersistDegraded);
  EXPECT_FALSE(R->Stats.PersistDegradeReason.empty());
  EXPECT_NE(R->Stats.PersistStoreFailures, 0u);
  EXPECT_TRUE(Reference->Run.observablyEquals(R->Run));
  FaultInjector::instance().reset();

  // Nothing was persisted; the next run starts cold but healthy.
  auto After = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(After.ok());
  EXPECT_FALSE(After->Prime.CacheFound);
  EXPECT_FALSE(After->Stats.PersistDegraded);
}

TEST(CircuitBreaker, FailFastSurfacesTheStoreError) {
  TinyWorkload W = makeTinyWorkload(2, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  FaultScope Scope;
  FaultInjector::instance().armProbability(FaultOp::Enospc, 1.0);
  PersistOptions Opts;
  Opts.FailFast = true;
  auto R = workloads::runPersistent(W.Registry, W.App,
                                    W.allSlotsInput(1), Db, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::IoError);
}

TEST(DegradedRuns, UnwritableDatabasePathStillRunsCorrectly) {
  // The database path sits under a regular file, so nothing about it is
  // creatable or writable — the strongest form of a read-only database
  // (works even when tests run as root, where chmod 0500 would not
  // bite).
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  ASSERT_TRUE(
      writeFileAtomic(Dir.path() + "/blocker", {1, 2, 3}).ok());
  std::string Broken = Dir.path() + "/blocker/db";

  CacheDatabase Good(Dir.path() + "/good");
  auto Input = W.allSlotsInput(2);
  auto Reference =
      workloads::runPersistent(W.Registry, W.App, Input, Good);
  ASSERT_TRUE(Reference.ok());

  CacheDatabase Db(Broken);
  auto R = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_FALSE(R->Prime.CacheFound);
  EXPECT_TRUE(R->Stats.PersistDegraded);
  EXPECT_TRUE(Reference->Run.observablyEquals(R->Run));
}

TEST(DegradedRuns, ReadFaultsAreCountedAsSkippedCandidates) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, Input, Db).ok());

  FaultScope Scope;
  FaultInjector::instance().armProbability(FaultOp::Read, 1.0);
  auto R = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_FALSE(R->Prime.CacheFound);
  EXPECT_NE(R->Prime.CandidatesSkippedIo, 0u);
  EXPECT_NE(R->Stats.PersistCandidatesSkippedIo, 0u);
  // An unreadable candidate is not a corrupt one: nothing quarantined.
  FaultInjector::instance().reset();
  auto Entries = Db.quarantined();
  ASSERT_TRUE(Entries.ok());
  EXPECT_TRUE(Entries->empty());
}

TEST(DegradedRuns, AllQuarantinedDatabaseRunsColdAndRecovers) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  // Corrupt the only cache on disk. The next run's open fails, the
  // corpse moves to the quarantine, the run proceeds cold and writes a
  // healthy replacement.
  flipByteAt(soleCachePath(Dir.path()), 10);
  auto R = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_FALSE(R->Prime.CacheFound);
  EXPECT_FALSE(R->Stats.PersistDegraded);
  EXPECT_TRUE(Cold->Run.observablyEquals(R->Run));

  auto Entries = Db.quarantined();
  ASSERT_TRUE(Entries.ok());
  EXPECT_EQ(Entries->size(), 1u);
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok());
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u);
}

//===----------------------------------------------------------------------===//
// pcc-dbcheck's engine: checkDatabase.
//===----------------------------------------------------------------------===//

TEST(DbCheck, CleanDatabaseReportsClean) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, W.allSlotsInput(2), Db)
          .ok());
  auto Report = checkDatabase(Dir.path());
  ASSERT_TRUE(Report.ok()) << Report.status().toString();
  EXPECT_TRUE(Report->clean());
  EXPECT_EQ(Report->FilesScanned, 1u);
  EXPECT_EQ(Report->FilesClean, 1u);
  EXPECT_EQ(Report->TracesDropped, 0u);
}

TEST(DbCheck, ReportPassNeverMutates) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, W.allSlotsInput(2), Db)
          .ok());
  std::string Path = soleCachePath(Dir.path());
  flipByteFromEnd(Path, 2); // Payload byte of the last trace.
  auto Before = readFile(Path);
  ASSERT_TRUE(Before.ok());

  auto Report = checkDatabase(Dir.path());
  ASSERT_TRUE(Report.ok());
  EXPECT_FALSE(Report->clean());
  EXPECT_EQ(Report->FilesCorrupt, 1u);
  EXPECT_NE(Report->TracesDropped, 0u);

  // Bytes untouched, nothing quarantined: observing is free of side
  // effects.
  auto After = readFile(Path);
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(*Before, *After);
  auto Entries = Db.quarantined();
  ASSERT_TRUE(Entries.ok());
  EXPECT_TRUE(Entries->empty());
}

TEST(DbCheck, RepairSalvagesTheSurvivingTraces) {
  TinyWorkload W = makeTinyWorkload(4, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  auto Input = W.allSlotsInput(2);
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());
  uint64_t TotalTraces = Cold->Stats.TracesCompiled;
  ASSERT_GT(TotalTraces, 1u);

  flipByteFromEnd(soleCachePath(Dir.path()), 2);
  DbCheckOptions Opts;
  Opts.Repair = true;
  auto Report = checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Report.ok()) << Report.status().toString();
  EXPECT_TRUE(Report->clean());
  EXPECT_EQ(Report->FilesRepaired, 1u);
  EXPECT_EQ(Report->TracesDropped, 1u);
  ASSERT_EQ(Report->Files.size(), 1u);
  EXPECT_EQ(Report->Files[0].TracesKept,
            static_cast<uint32_t>(TotalTraces - 1));

  // A second pass finds nothing left to do...
  auto Again = checkDatabase(Dir.path());
  ASSERT_TRUE(Again.ok());
  EXPECT_TRUE(Again->clean());
  EXPECT_EQ(Again->FilesClean, 1u);

  // ...and the repaired cache still primes: only the dropped trace is
  // retranslated, and the guest behaves identically.
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Warm.ok());
  EXPECT_TRUE(Warm->Prime.CacheFound);
  EXPECT_EQ(Warm->Stats.TracesCompiled, 1u);
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

TEST(DbCheck, RepairQuarantinesTheUnsalvageable) {
  TinyWorkload W = makeTinyWorkload(3, 0);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(
      workloads::runPersistent(W.Registry, W.App, W.allSlotsInput(2), Db)
          .ok());
  flipByteAt(soleCachePath(Dir.path()), 10); // Header: unsalvageable.

  DbCheckOptions Opts;
  Opts.Repair = true;
  auto Report = checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Report.ok());
  EXPECT_TRUE(Report->clean());
  EXPECT_EQ(Report->FilesQuarantined, 1u);
  ASSERT_EQ(Report->Quarantine.size(), 1u);
  EXPECT_FALSE(Report->Quarantine[0].Reason.empty());
}

TEST(DbCheck, RepairSweepsTempsAndStaleLocksButNeverStoreLock) {
  TempDir Dir;
  DirectoryStore Store(Dir.path());
  ASSERT_TRUE(Store.publish(7, makeFileWithStarts({0x400000}), 0).ok());
  // Fake a crashed writer's temporary and note the lock files publish
  // left behind (store.lock + k<hex>.lock, both free now).
  ASSERT_TRUE(writeFileAtomic(Dir.path() + "/junk", {1, 2, 3}).ok());
  ASSERT_TRUE(renameFile(Dir.path() + "/junk",
                         Dir.path() + "/x.pcc.tmp.999-1")
                  .ok());
  ASSERT_EQ(Store.locks().size(), 2u);

  auto Observe = checkDatabase(Dir.path());
  ASSERT_TRUE(Observe.ok());
  EXPECT_FALSE(Observe->clean()); // The orphan temp is debris.
  EXPECT_EQ(Observe->TempsFound, 1u);
  EXPECT_EQ(Observe->TempsSwept, 0u);

  DbCheckOptions Opts;
  Opts.Repair = true;
  auto Report = checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Report.ok());
  EXPECT_TRUE(Report->clean());
  EXPECT_EQ(Report->TempsSwept, 1u);
  EXPECT_EQ(Report->StaleLocksSwept, 1u); // The key lock only.
  EXPECT_TRUE(fileExists(Dir.path() + "/.locks/store.lock"));
  EXPECT_TRUE(Store.exists(7)); // The healthy cache is untouched.
}

//===----------------------------------------------------------------------===//
// The storm: concurrent publishers under a probabilistic fault plan.
//===----------------------------------------------------------------------===//

#if PCC_TEST_HAVE_FORK
TEST(FaultStorm, ConcurrentPublishersSurviveInjectedFaults) {
  // Four processes hammer one database while every store write risks
  // ENOSPC and a failed fsync, and every lock acquisition risks a
  // timeout (all at >= 10% probability). Required outcome: every run
  // completes correctly (degrading at worst), and the database left
  // behind is clean — no partial files, nothing corrupt.
  TinyWorkload W = makeTinyWorkload(8, 0);
  TempDir Dir;
  std::vector<std::vector<uint8_t>> Inputs;
  for (uint32_t Child = 0; Child != 4; ++Child)
    Inputs.push_back(W.input({{2 * Child, 2}, {2 * Child + 1, 2}}));

  std::vector<pid_t> Children;
  for (const auto &Input : Inputs) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Arm in the child only: each gets its own deterministic stream,
      // decorrelated by pid.
      Status Armed = FaultInjector::instance().configureFromPlan(
          "seed:" + std::to_string(getpid()) +
          ",enospc:0.1,fsync:0.1,lock:0.25");
      if (!Armed.ok())
        _exit(2);
      CacheDatabase Db(Dir.path());
      auto R = workloads::runPersistent(W.Registry, W.App, Input, Db);
      _exit(R.ok() ? 0 : 1);
    }
    Children.push_back(Pid);
  }
  for (pid_t Pid : Children) {
    int WStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    ASSERT_TRUE(WIFEXITED(WStatus));
    EXPECT_EQ(WEXITSTATUS(WStatus), 0);
  }

  // The parent never armed anything; the database must check out clean
  // even before repair.
  auto Report = checkDatabase(Dir.path());
  ASSERT_TRUE(Report.ok()) << Report.status().toString();
  EXPECT_TRUE(Report->clean());
  EXPECT_EQ(Report->FilesCorrupt, 0u);
  EXPECT_EQ(Report->FilesUnreadable, 0u);
  EXPECT_EQ(Report->TempsFound, 0u);
  EXPECT_TRUE(Report->Quarantine.empty());

  // Whatever subset of publishes survived the faults, the survivors
  // must be fully usable: a replay of each input compiles at most what
  // its publisher failed to persist, and never misbehaves.
  CacheDatabase Db(Dir.path());
  for (const auto &Input : Inputs) {
    auto Replay = workloads::runPersistent(W.Registry, W.App, Input, Db);
    ASSERT_TRUE(Replay.ok()) << Replay.status().toString();
  }
  auto Final = checkDatabase(Dir.path());
  ASSERT_TRUE(Final.ok());
  EXPECT_TRUE(Final->clean());
}
#endif // PCC_TEST_HAVE_FORK
