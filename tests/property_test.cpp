//===- tests/property_test.cpp - parameterized property sweeps ------------===//
//
// Property-based testing over randomly generated guest programs:
//
//   P1  Execution under the DBI engine is observably identical to the
//       reference interpreter (the run-time compiler's contract).
//   P2  Priming from a same-input persistent cache changes nothing
//       observable and removes all translation work.
//   P3  Accumulation is monotone: a cache never loses valid traces, and
//       re-running an already-covered input compiles nothing.
//   P4  Any module modification (timestamp bump) invalidates exactly
//       that module's traces.
//   P5  PIC caches survive arbitrary relocation with identical results.
//   P6  Severe cache-pool pressure (flushes) never changes results.
//
//===----------------------------------------------------------------------===//

#include "persist/CacheDatabase.h"
#include "persist/Session.h"
#include "support/Random.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::workloads;
using tests::TempDir;

namespace {

/// Deterministically generates a random app + input from a seed.
struct RandomProgram {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  std::vector<uint8_t> Input;
  unsigned NumSlots = 0;
};

RandomProgram makeRandomProgram(uint64_t Seed) {
  Rng Gen(Seed);
  RandomProgram P;

  // 0-2 libraries with 1-4 regions each.
  unsigned NumLibs = static_cast<unsigned>(Gen.nextBelow(3));
  std::vector<std::pair<std::string, std::string>> LibFns;
  for (unsigned L = 0; L != NumLibs; ++L) {
    LibraryDef Lib;
    Lib.Name = "librand" + std::to_string(L) + ".so";
    Lib.Path = "/lib/" + Lib.Name;
    unsigned NumFns = 1 + static_cast<unsigned>(Gen.nextBelow(4));
    for (unsigned F = 0; F != NumFns; ++F) {
      RegionDef Region;
      Region.Name = "f" + std::to_string(F);
      Region.Blocks = 2 + static_cast<uint32_t>(Gen.nextBelow(8));
      Region.InstsPerBlock = 5 + static_cast<uint32_t>(Gen.nextBelow(8));
      Region.YieldEveryBlocks =
          Gen.nextBool(0.3) ? 1 + static_cast<uint32_t>(Gen.nextBelow(4))
                            : 0;
      Region.Seed = Gen.next();
      Lib.Regions.push_back(std::move(Region));
      LibFns.emplace_back(Lib.Name, "f" + std::to_string(F));
    }
    P.Registry.add(buildLibrary(Lib));
  }

  AppDef Def;
  Def.Name = "rand" + std::to_string(Seed);
  Def.Path = "/bin/" + Def.Name;
  for (const auto &[LibName, Symbol] : LibFns)
    Def.Slots.push_back(FunctionSlot::import(LibName, Symbol));
  unsigned NumLocal = 1 + static_cast<unsigned>(Gen.nextBelow(6));
  for (unsigned I = 0; I != NumLocal; ++I) {
    RegionDef Region;
    Region.Name = "l" + std::to_string(I);
    Region.Blocks = 2 + static_cast<uint32_t>(Gen.nextBelow(8));
    Region.InstsPerBlock = 5 + static_cast<uint32_t>(Gen.nextBelow(8));
    Region.Seed = Gen.next();
    Def.Slots.push_back(FunctionSlot::local(std::move(Region)));
  }
  P.App = buildExecutable(Def);

  P.NumSlots = static_cast<unsigned>(LibFns.size()) + NumLocal;
  unsigned NumSlots = P.NumSlots;
  unsigned NumItems = 1 + static_cast<unsigned>(Gen.nextBelow(12));
  std::vector<WorkItem> Items;
  for (unsigned I = 0; I != NumItems; ++I)
    Items.push_back(WorkItem{
        static_cast<uint32_t>(Gen.nextBelow(NumSlots)),
        1 + static_cast<uint32_t>(Gen.nextBelow(40))});
  P.Input = encodeWorkload(Items);
  return P;
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RandomProgramTest, EngineMatchesInterpreter) {
  RandomProgram P = makeRandomProgram(GetParam());
  auto Native = runNative(P.Registry, P.App, P.Input);
  ASSERT_TRUE(Native.ok()) << Native.status().toString();
  auto Engine = runUnderEngine(P.Registry, P.App, P.Input);
  ASSERT_TRUE(Engine.ok()) << Engine.status().toString();
  EXPECT_TRUE(Native->observablyEquals(Engine->Run))
      << "seed " << GetParam();
}

TEST_P(RandomProgramTest, SameInputPersistenceIsTransparent) {
  RandomProgram P = makeRandomProgram(GetParam());
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto Cold = runPersistent(P.Registry, P.App, P.Input, Db);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  auto Warm = runPersistent(P.Registry, P.App, P.Input, Db);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run))
      << "seed " << GetParam();
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u) << "seed " << GetParam();
  EXPECT_EQ(Warm->Stats.CompileCycles, 0u);
}

TEST_P(RandomProgramTest, AccumulationIsMonotone) {
  RandomProgram P = makeRandomProgram(GetParam());
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());

  // Three different inputs derived from the same program.
  Rng Gen(GetParam() ^ 0xabcdef);
  std::vector<std::vector<uint8_t>> Inputs;
  for (unsigned K = 0; K != 3; ++K) {
    std::vector<WorkItem> Items;
    unsigned NumItems = 1 + static_cast<unsigned>(Gen.nextBelow(6));
    for (unsigned I = 0; I != NumItems; ++I)
      Items.push_back(WorkItem{
          static_cast<uint32_t>(
              Gen.nextBelow(std::min(2 + K, P.NumSlots))),
          1 + static_cast<uint32_t>(Gen.nextBelow(20))});
    Inputs.push_back(encodeWorkload(Items));
  }

  uint64_t PreviousTraces = 0;
  for (const auto &Input : Inputs) {
    auto R = runPersistent(P.Registry, P.App, Input, Db);
    ASSERT_TRUE(R.ok());
    // Cache only grows.
    auto Files = listDirectory(Dir.path());
    ASSERT_TRUE(Files.ok());
    ASSERT_EQ(Files->size(), 1u);
    auto File = persist::CacheFile::deserialize(
        *readFile(Dir.path() + "/" + (*Files)[0]));
    ASSERT_TRUE(File.ok());
    EXPECT_GE(File->Traces.size(), PreviousTraces);
    PreviousTraces = File->Traces.size();
  }

  // Re-running every input: nothing left to translate.
  for (const auto &Input : Inputs) {
    auto R = runPersistent(P.Registry, P.App, Input, Db);
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R->Stats.TracesCompiled, 0u) << "seed " << GetParam();
  }
}

TEST_P(RandomProgramTest, TouchedModuleInvalidatesOnlyItsTraces) {
  RandomProgram P = makeRandomProgram(GetParam());
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  auto Cold = runPersistent(P.Registry, P.App, P.Input, Db);
  ASSERT_TRUE(Cold.ok());

  // Touch the first library if there is one; otherwise touch the app.
  auto Lib = P.Registry.find("librand0.so");
  if (Lib) {
    auto NewLib = std::make_shared<binary::Module>(*Lib);
    NewLib->touch();
    P.Registry.add(NewLib);
    auto Warm = runPersistent(P.Registry, P.App, P.Input, Db);
    ASSERT_TRUE(Warm.ok());
    EXPECT_TRUE(Warm->Prime.CacheFound);
    EXPECT_EQ(Warm->Prime.ModulesInvalidated, 1u);
    EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
    return;
  }
  auto NewApp = std::make_shared<binary::Module>(*P.App);
  NewApp->touch();
  // A touched app changes the lookup key: fresh cache, full retranslate.
  auto Warm = runPersistent(P.Registry, NewApp, P.Input, Db);
  ASSERT_TRUE(Warm.ok());
  EXPECT_FALSE(Warm->Prime.CacheFound);
  EXPECT_GT(Warm->Stats.TracesCompiled, 0u);
}

TEST_P(RandomProgramTest, PicSurvivesRelocation) {
  RandomProgram P = makeRandomProgram(GetParam());
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  persist::PersistOptions Pic;
  Pic.PositionIndependent = true;
  auto Cold = runPersistent(P.Registry, P.App, P.Input, Db, Pic,
                            nullptr, dbi::EngineOptions(),
                            loader::BasePolicy::Randomized,
                            GetParam() * 3 + 1);
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  auto Warm = runPersistent(P.Registry, P.App, P.Input, Db, Pic,
                            nullptr, dbi::EngineOptions(),
                            loader::BasePolicy::Randomized,
                            GetParam() * 7 + 5);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u) << "seed " << GetParam();
  EXPECT_TRUE(Cold->Run.observablyEquals(Warm->Run));
}

TEST_P(RandomProgramTest, FlushPressureIsTransparent) {
  RandomProgram P = makeRandomProgram(GetParam());
  auto Reference = runNative(P.Registry, P.App, P.Input);
  ASSERT_TRUE(Reference.ok());
  dbi::EngineOptions Tiny;
  Tiny.CodePoolBytes = 2048;
  Tiny.DataPoolBytes = 2048;
  auto R = runUnderEngine(P.Registry, P.App, P.Input, nullptr, Tiny);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_TRUE(Reference->observablyEquals(R->Run))
      << "seed " << GetParam();
}

TEST_P(RandomProgramTest, InstrumentationCountsConsistent) {
  RandomProgram P = makeRandomProgram(GetParam());
  dbi::InstructionCounterTool Icount;
  auto R = runUnderEngine(P.Registry, P.App, P.Input, &Icount);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Icount.count(), R->Run.InstructionsExecuted);

  dbi::BasicBlockCounterTool Bb;
  auto R2 = runUnderEngine(P.Registry, P.App, P.Input, &Bb);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(Bb.totalInstructions(), R2->Run.InstructionsExecuted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Trace-limit sweep: the fixed instruction count bounding trace
// selection is a pure performance knob — results must be identical for
// any limit, and persistence must work at every limit.
//===----------------------------------------------------------------------===//

namespace {
class TraceLimitSweep : public ::testing::TestWithParam<uint32_t> {};
} // namespace

TEST_P(TraceLimitSweep, LimitNeverChangesResults) {
  RandomProgram P = makeRandomProgram(777);
  auto Native = runNative(P.Registry, P.App, P.Input);
  ASSERT_TRUE(Native.ok());

  dbi::EngineOptions Opts;
  Opts.MaxTraceInsts = GetParam();
  auto R = runUnderEngine(P.Registry, P.App, P.Input, nullptr, Opts);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_TRUE(Native->observablyEquals(R->Run))
      << "limit " << GetParam();

  // Persistence round-trips at this limit too.
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  ASSERT_TRUE(runPersistent(P.Registry, P.App, P.Input, Db,
                            persist::PersistOptions(), nullptr, Opts)
                  .ok());
  auto Warm = runPersistent(P.Registry, P.App, P.Input, Db,
                            persist::PersistOptions(), nullptr, Opts);
  ASSERT_TRUE(Warm.ok());
  EXPECT_EQ(Warm->Stats.TracesCompiled, 0u) << "limit " << GetParam();
  EXPECT_TRUE(Native->observablyEquals(Warm->Run));
}

INSTANTIATE_TEST_SUITE_P(Limits, TraceLimitSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u,
                                           32u, 64u));

TEST(PicInterApp, RelocatedLibrariesSharedAcrossApplications) {
  // The full synergy of the paper's two extensions: inter-application
  // reuse *and* position independence. App B primes from app A's cache
  // under ASLR — even though every shared library sits at a different
  // base in B, the PIC translations relocate and B reuses them.
  loader::ModuleRegistry Registry;
  workloads::LibraryDef Lib;
  Lib.Name = "libshared.so";
  Lib.Path = "/lib/libshared.so";
  for (uint32_t I = 0; I != 6; ++I) {
    workloads::RegionDef Region;
    Region.Name = "fn" + std::to_string(I);
    Region.Blocks = 5;
    Region.InstsPerBlock = 9;
    Region.Seed = 900 + I;
    Lib.Regions.push_back(std::move(Region));
  }
  Registry.add(workloads::buildLibrary(Lib));
  auto makeApp = [&](const std::string &Name) {
    workloads::AppDef Def;
    Def.Name = Name;
    Def.Path = "/bin/" + Name;
    for (uint32_t I = 0; I != 6; ++I)
      Def.Slots.push_back(workloads::FunctionSlot::import(
          "libshared.so", "fn" + std::to_string(I)));
    return workloads::buildExecutable(Def);
  };
  auto AppA = makeApp("picA");
  auto AppB = makeApp("picB");
  auto Input = workloads::encodeWorkload(
      {{0, 3}, {1, 3}, {2, 3}, {3, 3}, {4, 3}, {5, 3}});

  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  persist::PersistOptions Opts;
  Opts.PositionIndependent = true;
  Opts.InterApplication = true;

  auto RA = runPersistent(Registry, AppA, Input, Db, Opts, nullptr,
                          dbi::EngineOptions(),
                          loader::BasePolicy::Randomized, 100);
  ASSERT_TRUE(RA.ok());
  auto RB = runPersistent(Registry, AppB, Input, Db, Opts, nullptr,
                          dbi::EngineOptions(),
                          loader::BasePolicy::Randomized, 200);
  ASSERT_TRUE(RB.ok()) << RB.status().toString();
  EXPECT_TRUE(RB->Prime.CacheFound);
  EXPECT_GT(RB->Prime.TracesInstalled, 0u)
      << "PIC library traces must survive relocation across apps";
  // B's own application code still needs translating, nothing else.
  auto Native = runNative(Registry, AppB, Input);
  ASSERT_TRUE(Native.ok());
  EXPECT_TRUE(Native->observablyEquals(RB->Run));
  // Library traces dominate this program: reuse must dominate.
  EXPECT_GT(RB->Prime.TracesInstalled, RB->Stats.TracesCompiled);
}
