//===- tests/analysis_test.cpp - CFG, dataflow, translation validation ----===//
//
// The static-analysis subsystem and its integration into the engine and
// the persistence layer: CFG reconstruction (loops, unreachable code,
// trace mode), dataflow fixpoints, the trace translation validator
// (identity, sound elision, and 100% detection of seeded single-
// instruction miscompiles), the --opt-flags elision pass, deep
// verification at prime/finalize, and `pcc-dbcheck --deep`.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "analysis/Validator.h"
#include "dbi/Compiler.h"
#include "persist/CacheDatabase.h"
#include "persist/DbCheck.h"
#include "persist/Session.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::Opcode;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

// A counted loop: A = [ldi, ldi], B = [add, addi, bne -> B | C],
// C = [halt]. r1 counts down, r2 accumulates.
std::vector<Instruction> loopProgram(uint32_t Base) {
  return {
      isa::makeLdi(1, 10),
      isa::makeLdi(2, 0),
      isa::makeAlu(Opcode::Add, 2, 2, 1),
      isa::makeAluImm(Opcode::Addi, 1, 1, 0xffffffffu),
      isa::makeBranch(Opcode::Bne, 1, 0, Base + 2 * 8),
      isa::makeHalt(),
  };
}

// A straight-line trace body touching every effect class: constant,
// load, ALU, store, conditional branch, immediate ALU, syscall
// terminator.
std::vector<Instruction> effectBody() {
  return {
      isa::makeLdi(1, 0x40),
      isa::makeLoad(2, 1, 0),
      isa::makeAlu(Opcode::Add, 3, 2, 2),
      isa::makeStore(1, 4, 3),
      isa::makeBranch(Opcode::Beq, 3, 0, 0x2000),
      isa::makeAluImm(Opcode::Addi, 4, 3, 1),
      isa::makeSys(7),
  };
}

// Instruction slots symExecute can reach: everything up to and
// including the first trace terminator.
size_t reachableLen(const std::vector<Instruction> &Body) {
  for (size_t I = 0; I != Body.size(); ++I)
    if (isa::isTraceTerminator(Body[I].Op))
      return I + 1;
  return Body.size();
}

// A single-instruction mutation guaranteed to change guest-visible
// effects: a mid-body Halt introduces an exit the source does not
// have, and a Halt becomes a direct jump.
Instruction semanticMutation(const Instruction &Inst, uint32_t InstPc) {
  if (Inst.Op == Opcode::Halt)
    return isa::makeJmp(InstPc + isa::InstructionSize);
  return isa::makeHalt();
}

// Seeds one guaranteed-semantic miscompile into every trace of a cache
// file (at a per-trace position, cycling through the reachable prefix)
// and returns the mutated trace count. Re-serializing afterwards
// recomputes every CRC, so only the deep semantic pass can tell.
unsigned mutateEveryTrace(persist::CacheFile &File) {
  unsigned Mutated = 0;
  for (persist::TraceRecord &Rec : File.Traces) {
    auto Body = isa::decodeAll(Rec.Code.data() + dbi::TracePrologueBytes,
                               Rec.GuestInstCount);
    EXPECT_TRUE(Body.ok());
    if (!Body.ok())
      continue;
    size_t Idx = Mutated % reachableLen(*Body);
    auto Enc = semanticMutation(
                   (*Body)[Idx],
                   Rec.GuestStart +
                       static_cast<uint32_t>(Idx) * isa::InstructionSize)
                   .encode();
    std::copy(Enc.begin(), Enc.end(),
              Rec.Code.begin() + dbi::TracePrologueBytes +
                  Idx * isa::InstructionSize);
    ++Mutated;
  }
  return Mutated;
}

// Corrupts every trace of the (single) cache file in \p Db's directory
// in a CRC-transparent, semantics-changing way.
unsigned mutateDatabase(const std::string &Dir) {
  auto Names = listDirectory(Dir);
  EXPECT_TRUE(Names.ok());
  unsigned Mutated = 0;
  for (const std::string &Name : *Names) {
    if (Name.size() < 4 || Name.substr(Name.size() - 4) != ".pcc")
      continue;
    std::string Path = Dir + "/" + Name;
    auto Bytes = readFile(Path);
    EXPECT_TRUE(Bytes.ok());
    auto File = persist::CacheFile::deserialize(*Bytes);
    EXPECT_TRUE(File.ok());
    Mutated += mutateEveryTrace(*File);
    EXPECT_TRUE(writeFileAtomic(Path, File->serialize()).ok());
  }
  return Mutated;
}

// Serializes the tiny workload's modules for `pcc-dbcheck --deep`.
std::vector<std::string> writeModuleFiles(const TinyWorkload &W,
                                          const std::string &Dir,
                                          bool IncludeLibrary = true) {
  std::vector<std::string> Paths;
  std::string AppPath = Dir + "/app.mod";
  EXPECT_TRUE(writeFileAtomic(AppPath, W.App->serialize()).ok());
  Paths.push_back(AppPath);
  if (IncludeLibrary) {
    auto Lib = W.Registry.find("libtest.so");
    EXPECT_TRUE(Lib != nullptr);
    std::string LibPath = Dir + "/lib.mod";
    EXPECT_TRUE(writeFileAtomic(LibPath, Lib->serialize()).ok());
    Paths.push_back(LibPath);
  }
  return Paths;
}

} // namespace

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

TEST(Cfg, LoopBlocksAndEdges) {
  const uint32_t Base = 0x1000;
  Cfg G = buildCfg(loopProgram(Base), Base, {Base});
  ASSERT_EQ(G.blocks().size(), 3u);

  int A = G.blockStartingAt(Base);
  int B = G.blockStartingAt(Base + 2 * 8);
  int C = G.blockStartingAt(Base + 5 * 8);
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  ASSERT_GE(C, 0);

  EXPECT_EQ(G.blocks()[A].InstCount, 2u);
  EXPECT_EQ(G.blocks()[B].InstCount, 3u);
  EXPECT_EQ(G.blocks()[C].InstCount, 1u);

  EXPECT_EQ(G.blocks()[A].Succs,
            std::vector<uint32_t>{static_cast<uint32_t>(B)});
  // The loop: B branches back to itself and falls through to C.
  std::vector<uint32_t> WantB{static_cast<uint32_t>(B),
                              static_cast<uint32_t>(C)};
  std::sort(WantB.begin(), WantB.end());
  EXPECT_EQ(G.blocks()[B].Succs, WantB);
  EXPECT_FALSE(G.blocks()[B].HasExternalSucc);
  EXPECT_TRUE(G.blocks()[C].Succs.empty());

  ASSERT_EQ(G.roots().size(), 1u);
  EXPECT_EQ(G.roots()[0], static_cast<uint32_t>(A));
}

TEST(Cfg, UnreachableInstructionsBelongToNoBlock) {
  const uint32_t Base = 0x2000;
  std::vector<Instruction> P{
      isa::makeJmp(Base + 3 * 8), // 0: skip over dead code
      isa::makeLdi(1, 1),         // 1: unreachable
      isa::makeLdi(2, 2),         // 2: unreachable
      isa::makeHalt(),            // 3
  };
  Cfg G = buildCfg(P, Base, {Base});
  ASSERT_EQ(G.blocks().size(), 2u);
  EXPECT_GE(G.blockContaining(Base), 0);
  EXPECT_EQ(G.blockContaining(Base + 1 * 8), -1);
  EXPECT_EQ(G.blockContaining(Base + 2 * 8), -1);
  EXPECT_GE(G.blockContaining(Base + 3 * 8), 0);

  // The solvers run over exactly the discovered blocks.
  LivenessResult L = solveLiveness(G);
  EXPECT_EQ(L.LiveIn.size(), G.blocks().size());
  ReachingDefsResult D = solveReachingDefs(G);
  EXPECT_EQ(D.In.size(), G.blocks().size());
}

TEST(Cfg, TraceModeMakesBranchTargetsExternal) {
  const uint32_t Base = 0x1000;
  CfgOptions Opts;
  Opts.BranchTargetsExternal = true;
  Cfg G = buildCfg(loopProgram(Base), Base, {Base}, Opts);

  // The backedge target is not even a leader: traces are entered only
  // at their head, so the first block runs straight through the branch
  // and the taken edge leaves the region through the dispatcher.
  ASSERT_EQ(G.blocks().size(), 2u);
  int A = G.blockStartingAt(Base);
  int C = G.blockStartingAt(Base + 5 * 8);
  ASSERT_GE(A, 0);
  ASSERT_GE(C, 0);
  EXPECT_EQ(G.blocks()[A].InstCount, 5u);
  EXPECT_EQ(G.blocks()[A].Succs,
            std::vector<uint32_t>{static_cast<uint32_t>(C)});
  EXPECT_TRUE(G.blocks()[A].HasExternalSucc);
}

TEST(Cfg, IndirectTransfersAreSummarized) {
  const uint32_t Base = 0x1000;
  std::vector<Instruction> P{
      isa::makeLdi(5, 0x3000),
      isa::makeJr(5),
  };
  Cfg G = buildCfg(P, Base, {Base});
  ASSERT_EQ(G.blocks().size(), 1u);
  EXPECT_TRUE(G.blocks()[0].EndsInIndirect);
  EXPECT_TRUE(G.blocks()[0].HasExternalSucc);
  EXPECT_EQ(G.indirectSources(), std::vector<uint32_t>{1u});
}

TEST(Cfg, DecodeFaultTruncatesRegion) {
  std::vector<uint8_t> Bytes = isa::encodeAll(
      {isa::makeLdi(1, 7), isa::makeAlu(Opcode::Add, 2, 1, 1)});
  Bytes.push_back(0xff); // garbage opcode, then a truncated slot
  Bytes.push_back(0x00);

  Cfg G = buildCfgFromBytes(Bytes.data(), Bytes.size(), 0x4000,
                            {0x4000});
  ASSERT_TRUE(G.decodeFault().has_value());
  EXPECT_EQ(G.decodeFault()->InstIndex, 2u);
  EXPECT_EQ(G.decodeFault()->ByteOffset, 16u);
  EXPECT_EQ(G.instructions().size(), 2u);
}

//===----------------------------------------------------------------------===//
// Length-aware decoding
//===----------------------------------------------------------------------===//

TEST(DecodeBuffer, TruncatedTailIsLocated) {
  std::vector<uint8_t> Bytes =
      isa::encodeAll({isa::makeLdi(1, 1), isa::makeHalt()});
  Bytes.resize(Bytes.size() + 3); // partial third instruction
  isa::DecodeResult R = isa::decodeBuffer(Bytes.data(), Bytes.size());
  EXPECT_EQ(R.Insts.size(), 2u);
  ASSERT_FALSE(R.complete());
  EXPECT_EQ(R.Error->InstIndex, 2u);
  EXPECT_EQ(R.Error->ByteOffset, 16u);
}

TEST(DecodeBuffer, InvalidOpcodeIsLocated) {
  std::vector<uint8_t> Bytes = isa::encodeAll(
      {isa::makeLdi(1, 1), isa::makeHalt(), isa::makeNop()});
  Bytes[8] = 0xee; // clobber the second opcode
  isa::DecodeResult R = isa::decodeBuffer(Bytes.data(), Bytes.size());
  EXPECT_EQ(R.Insts.size(), 1u);
  ASSERT_FALSE(R.complete());
  EXPECT_EQ(R.Error->InstIndex, 1u);
  EXPECT_EQ(R.Error->ByteOffset, 8u);
}

//===----------------------------------------------------------------------===//
// Dataflow fixpoints
//===----------------------------------------------------------------------===//

TEST(Dataflow, LivenessLoopFixpoint) {
  const uint32_t Base = 0x1000;
  Cfg G = buildCfg(loopProgram(Base), Base, {Base});
  int A = G.blockStartingAt(Base);
  int B = G.blockStartingAt(Base + 2 * 8);
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);

  LivenessResult L = solveLiveness(G);
  // r1 and r2 are loop-carried: live around the backedge and into B.
  EXPECT_TRUE(L.LiveIn[B] & (1u << 1));
  EXPECT_TRUE(L.LiveIn[B] & (1u << 2));
  EXPECT_TRUE(L.LiveOut[B] & (1u << 1));
  // Both are defined in A before any use: dead at A's entry.
  EXPECT_FALSE(L.LiveIn[A] & (1u << 1));
  EXPECT_FALSE(L.LiveIn[A] & (1u << 2));
  // liveBefore agrees with the block summaries: before the add, r1 and
  // r2 are both live; before the bne only r1 (and r0) matter, but r2
  // stays live across it on the loop path.
  RegSet BeforeAdd = L.liveBefore(G, static_cast<uint32_t>(B),
                                  G.blocks()[B].FirstInst);
  EXPECT_TRUE(BeforeAdd & (1u << 1));
  EXPECT_TRUE(BeforeAdd & (1u << 2));
}

TEST(Dataflow, LivenessBoundaryIsAllRegsInTraceMode) {
  const uint32_t Base = 0x1000;
  CfgOptions Opts;
  Opts.BranchTargetsExternal = true;
  Cfg G = buildCfg(loopProgram(Base), Base, {Base}, Opts);
  int A = G.blockStartingAt(Base);
  ASSERT_GE(A, 0);
  LivenessResult L = solveLiveness(G);
  // The taken branch leaves the region, so everything is observable.
  EXPECT_EQ(L.LiveOut[A], AllRegs);
}

TEST(Dataflow, ReachingDefsLoopFixpoint) {
  const uint32_t Base = 0x1000;
  Cfg G = buildCfg(loopProgram(Base), Base, {Base});
  int A = G.blockStartingAt(Base);
  int B = G.blockStartingAt(Base + 2 * 8);
  int C = G.blockStartingAt(Base + 5 * 8);
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  ASSERT_GE(C, 0);

  ReachingDefsResult D = solveReachingDefs(G);
  // Defs in instruction order: 0 = ldi r1, 1 = ldi r2, 2 = add r2,
  // 3 = addi r1.
  ASSERT_EQ(D.DefSites.size(), 4u);
  EXPECT_EQ(D.DefSites[0], 0u);
  EXPECT_EQ(D.DefSites[3], 3u);

  // The loop header's entry meets both the initial defs (from A) and
  // the loop-carried redefinitions (around the backedge) — the
  // classical may-fixpoint.
  EXPECT_TRUE(D.reachesEntry(0, static_cast<uint32_t>(B)));
  EXPECT_TRUE(D.reachesEntry(1, static_cast<uint32_t>(B)));
  EXPECT_TRUE(D.reachesEntry(2, static_cast<uint32_t>(B)));
  EXPECT_TRUE(D.reachesEntry(3, static_cast<uint32_t>(B)));
  // Nothing reaches the root's entry.
  EXPECT_FALSE(D.reachesEntry(0, static_cast<uint32_t>(A)));
  // Only the in-loop redefinitions survive to C (they kill 0 and 1).
  EXPECT_FALSE(D.reachesEntry(0, static_cast<uint32_t>(C)));
  EXPECT_FALSE(D.reachesEntry(1, static_cast<uint32_t>(C)));
  EXPECT_TRUE(D.reachesEntry(2, static_cast<uint32_t>(C)));
  EXPECT_TRUE(D.reachesEntry(3, static_cast<uint32_t>(C)));
}

TEST(Dataflow, DeadTraceDefs) {
  // Shadowed pure def with no intervening exit: dead.
  std::vector<Instruction> Shadowed{
      isa::makeLdi(3, 5),
      isa::makeLdi(4, 7),
      isa::makeAlu(Opcode::Add, 3, 4, 4),
      isa::makeJmp(0x2000),
  };
  std::vector<bool> Dead = findDeadTraceDefs(Shadowed, 0x1000);
  ASSERT_EQ(Dead.size(), Shadowed.size());
  EXPECT_TRUE(Dead[0]);
  EXPECT_FALSE(Dead[1]);
  EXPECT_FALSE(Dead[2]);
  EXPECT_FALSE(Dead[3]);

  // A branch between def and redef makes every register observable at
  // the exit: nothing is dead.
  std::vector<Instruction> AcrossExit{
      isa::makeLdi(3, 5),
      isa::makeBranch(Opcode::Beq, 1, 2, 0x2000),
      isa::makeLdi(3, 7),
      isa::makeJmp(0x3000),
  };
  Dead = findDeadTraceDefs(AcrossExit, 0x1000);
  EXPECT_TRUE(std::none_of(Dead.begin(), Dead.end(),
                           [](bool B) { return B; }));

  // A shadowed load is not pure (it can fault): never elided.
  std::vector<Instruction> DeadLoad{
      isa::makeLoad(3, 1, 0),
      isa::makeLdi(3, 1),
      isa::makeJmp(0x2000),
  };
  Dead = findDeadTraceDefs(DeadLoad, 0x1000);
  EXPECT_TRUE(std::none_of(Dead.begin(), Dead.end(),
                           [](bool B) { return B; }));
}

//===----------------------------------------------------------------------===//
// Translation validation
//===----------------------------------------------------------------------===//

TEST(Validator, IdentityValidates) {
  std::vector<std::vector<Instruction>> Bodies{
      effectBody(),
      {isa::makeLdi(5, 0x3000), isa::makeCallr(5)},
      {isa::makeRet()},
      {isa::makeAlu(Opcode::Add, 1, 2, 3)}, // fall-through exit
      loopProgram(0x1000),
  };
  for (const auto &Body : Bodies) {
    ValidationResult R = validateTranslation(0x1000, Body, Body);
    EXPECT_TRUE(R.Equivalent) << R.message();
  }
}

TEST(Validator, AcceptsDeadDefNopElision) {
  std::vector<Instruction> Source{
      isa::makeLdi(3, 5),
      isa::makeLdi(4, 7),
      isa::makeAlu(Opcode::Add, 3, 4, 4),
      isa::makeJmp(0x2000),
  };
  std::vector<Instruction> Elided = Source;
  Elided[0] = isa::makeNop();
  ValidationResult R = validateTranslation(0x1000, Source, Elided);
  EXPECT_TRUE(R.Equivalent) << R.message();
}

TEST(Validator, RejectsLoadElision) {
  // The loaded value is dead, but the access can fault: eliding the
  // load removes a guest-visible memory read.
  std::vector<Instruction> Source{
      isa::makeLoad(3, 1, 0),
      isa::makeLdi(3, 1),
      isa::makeJmp(0x2000),
  };
  std::vector<Instruction> Elided = Source;
  Elided[0] = isa::makeNop();
  ValidationResult R = validateTranslation(0x1000, Source, Elided);
  ASSERT_FALSE(R.Equivalent);
  ASSERT_TRUE(R.Mismatch.has_value());
}

TEST(Validator, CatchesTargetedMutations) {
  const uint32_t Start = 0x1000;
  const std::vector<Instruction> Source = effectBody();
  struct Case {
    size_t Index;
    Instruction Replacement;
    const char *What;
  };
  const Case Cases[] = {
      {0, isa::makeLdi(1, 0x44), "constant changed"},
      {1, isa::makeLoad(2, 1, 4), "load offset changed"},
      {2, isa::makeAlu(Opcode::Sub, 3, 2, 2), "ALU opcode swapped"},
      {3, isa::makeStore(1, 8, 3), "store offset changed"},
      {4, isa::makeBranch(Opcode::Bne, 3, 0, 0x2000),
       "branch condition inverted"},
      {4, isa::makeBranch(Opcode::Beq, 3, 0, 0x2008),
       "branch target shifted"},
      {5, isa::makeAluImm(Opcode::Addi, 4, 3, 2), "live imm changed"},
      {6, isa::makeSys(8), "syscall number changed"},
  };
  for (const Case &C : Cases) {
    std::vector<Instruction> Mutated = Source;
    Mutated[C.Index] = C.Replacement;
    ValidationResult R = validateTranslation(Start, Source, Mutated);
    EXPECT_FALSE(R.Equivalent) << C.What << " not flagged";
  }

  // Indirect-transfer and terminator mutations.
  const std::vector<Instruction> CallrBody{isa::makeLdi(5, 0x3000),
                                           isa::makeCallr(5)};
  std::vector<Instruction> M = CallrBody;
  M[1] = isa::makeCallr(6);
  EXPECT_FALSE(
      validateTranslation(Start, CallrBody, M).Equivalent)
      << "indirect register change not flagged";
  M = CallrBody;
  M[1] = isa::makeJr(5);
  EXPECT_FALSE(
      validateTranslation(Start, CallrBody, M).Equivalent)
      << "callr -> jr (missing return push) not flagged";

  const std::vector<Instruction> RetBody{isa::makeRet()};
  M = RetBody;
  M[0] = isa::makeJr(isa::StackPointerReg);
  EXPECT_FALSE(validateTranslation(Start, RetBody, M).Equivalent)
      << "ret -> jr (missing pop) not flagged";
}

TEST(Validator, CatchesEverySeededSingleInstructionMiscompile) {
  // 100% detection, zero false negatives: for every reachable slot of
  // every body, the universal seeder mutation must be flagged.
  std::vector<std::vector<Instruction>> Bodies{
      effectBody(),
      {isa::makeLdi(5, 0x3000), isa::makeCallr(5)},
      {isa::makeRet()},
      {isa::makeNop(), isa::makeHalt()},
      {isa::makeAlu(Opcode::Add, 1, 2, 3)},
      loopProgram(0x1000),
  };
  const uint32_t Start = 0x1000;
  unsigned Seeded = 0, Flagged = 0;
  for (const auto &Body : Bodies) {
    for (size_t I = 0; I != reachableLen(Body); ++I) {
      std::vector<Instruction> Mutated = Body;
      Mutated[I] = semanticMutation(
          Body[I],
          Start + static_cast<uint32_t>(I) * isa::InstructionSize);
      if (Mutated[I] == Body[I])
        continue;
      ++Seeded;
      ValidationResult R = validateTranslation(Start, Body, Mutated);
      Flagged += !R.Equivalent;
      EXPECT_FALSE(R.Equivalent)
          << "mutation at slot " << I << " not flagged";
    }
  }
  EXPECT_GT(Seeded, 0u);
  EXPECT_EQ(Flagged, Seeded) << "validator missed a seeded miscompile";
}

TEST(Validator, MismatchDiagnosticsAreStructured) {
  std::vector<Instruction> Source = effectBody();
  std::vector<Instruction> Mutated = Source;
  Mutated[6] = isa::makeSys(8);
  ValidationResult R = validateTranslation(0x1000, Source, Mutated);
  ASSERT_FALSE(R.Equivalent);
  ASSERT_TRUE(R.Mismatch.has_value());
  EXPECT_EQ(R.Mismatch->InstIndex, 6u);
  EXPECT_NE(R.message().find("syscall number"), std::string::npos);

  // Body-shape mismatches report the first differing position.
  std::vector<Instruction> Longer = Source;
  Longer.push_back(isa::makeNop());
  R = validateTranslation(0x1000, Source, Longer);
  ASSERT_FALSE(R.Equivalent);
  EXPECT_EQ(R.Mismatch->ExitIndex, ~0u);
}

//===----------------------------------------------------------------------===//
// --opt-flags elision under the engine
//===----------------------------------------------------------------------===//

namespace {

void expectArchitecturalStatsEqual(const dbi::EngineStats &A,
                                   const dbi::EngineStats &B) {
  EXPECT_EQ(A.GuestInstsExecuted, B.GuestInstsExecuted);
  EXPECT_EQ(A.SyscallCount, B.SyscallCount);
  EXPECT_EQ(A.TracesCompiled, B.TracesCompiled);
  EXPECT_EQ(A.TraceExecutions, B.TraceExecutions);
  EXPECT_EQ(A.LinksCreated, B.LinksCreated);
  EXPECT_EQ(A.ExecCycles, B.ExecCycles);
  EXPECT_EQ(A.Timeline.size(), B.Timeline.size());
}

void expectRunsEqual(const vm::RunResult &A, const vm::RunResult &B) {
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.WordLog, B.WordLog);
  EXPECT_EQ(A.InstructionsExecuted, B.InstructionsExecuted);
}

} // namespace

TEST(Elision, ArchitecturalResultsIdenticalAndValidated) {
  dbi::EngineOptions Plain;
  dbi::EngineOptions Optimized;
  Optimized.OptimizeFlags = true;

  uint64_t TotalElided = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    TinyWorkload W = makeTinyWorkload(3, 0, Seed);
    std::vector<uint8_t> Input = W.allSlotsInput(2);
    auto Base = workloads::runUnderEngine(W.Registry, W.App, Input,
                                          nullptr, Plain);
    auto Opt = workloads::runUnderEngine(W.Registry, W.App, Input,
                                         nullptr, Optimized);
    ASSERT_TRUE(Base.ok());
    ASSERT_TRUE(Opt.ok());
    expectRunsEqual(Base->Run, Opt->Run);
    expectArchitecturalStatsEqual(Base->Stats, Opt->Stats);
    // Every elided trace was proved equivalent; none rejected means no
    // unsound substitution was ever attempted on this workload.
    EXPECT_EQ(Opt->Stats.VerifyFailures, 0u);
    EXPECT_EQ(Base->Stats.FlagsElided, 0u);
    TotalElided += Opt->Stats.FlagsElided;
    if (Opt->Stats.FlagsElided != 0) {
      EXPECT_GT(Opt->Stats.TracesVerified, 0u);
    }
  }
  EXPECT_GT(TotalElided, 0u)
      << "no workload seed produced an elidable dead def";
}

TEST(Elision, StatsBitIdenticalWhenOff) {
  TinyWorkload W = makeTinyWorkload();
  std::vector<uint8_t> Input = W.allSlotsInput(2);
  auto A = workloads::runUnderEngine(W.Registry, W.App, Input);
  auto B = workloads::runUnderEngine(W.Registry, W.App, Input);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  expectRunsEqual(A->Run, B->Run);
  expectArchitecturalStatsEqual(A->Stats, B->Stats);
  EXPECT_EQ(A->Stats.CompileCycles, B->Stats.CompileCycles);
  EXPECT_EQ(A->Stats.DispatchCycles, B->Stats.DispatchCycles);
  EXPECT_EQ(A->Stats.TracesVerified, 0u);
  EXPECT_EQ(A->Stats.VerifyFailures, 0u);
  EXPECT_EQ(A->Stats.FlagsElided, 0u);
}

//===----------------------------------------------------------------------===//
// Deep verification through persistence
//===----------------------------------------------------------------------===//

TEST(SemanticPersist, ValidateSemanticCleanRoundTrip) {
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  TinyWorkload W = makeTinyWorkload();
  std::vector<uint8_t> Input = W.allSlotsInput(2);

  persist::PersistOptions Opts;
  Opts.ValidateSemantic = true;

  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       Opts);
  ASSERT_TRUE(Cold.ok());
  // finalize() re-proved every written trace.
  EXPECT_GT(Cold->Stats.TracesVerified, 0u);
  EXPECT_EQ(Cold->Stats.VerifyFailures, 0u);

  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       Opts);
  ASSERT_TRUE(Warm.ok());
  EXPECT_GT(Warm->Prime.TracesInstalled, 0u);
  // Primed traces validated at first materialization, plus the
  // finalize re-proof.
  EXPECT_GT(Warm->Stats.TracesVerified, 0u);
  EXPECT_EQ(Warm->Stats.VerifyFailures, 0u);
  expectRunsEqual(Cold->Run, Warm->Run);

  auto Quarantined = Db.quarantined();
  ASSERT_TRUE(Quarantined.ok());
  EXPECT_TRUE(Quarantined->empty());
}

TEST(SemanticPersist, PrimedMiscompileDroppedAndQuarantined) {
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  TinyWorkload W = makeTinyWorkload();
  std::vector<uint8_t> Input = W.allSlotsInput(2);

  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  // Seed a CRC-transparent miscompile into every persisted trace.
  unsigned Mutated = mutateDatabase(Dir.path());
  ASSERT_GT(Mutated, 0u);

  persist::PersistOptions Opts;
  Opts.ValidateSemantic = true;
  auto Warm = workloads::runPersistent(W.Registry, W.App, Input, Db,
                                       Opts);
  ASSERT_TRUE(Warm.ok());
  // Every mutated trace the run touched was rejected at first decode
  // and retranslated; guest-visible results are unaffected.
  EXPECT_GT(Warm->Stats.VerifyFailures, 0u);
  expectRunsEqual(Cold->Run, Warm->Run);

  // The poisoned source cache went to quarantine, machine-readably.
  auto Quarantined = Db.quarantined();
  ASSERT_TRUE(Quarantined.ok());
  ASSERT_EQ(Quarantined->size(), 1u);
  EXPECT_EQ((*Quarantined)[0].Code,
            persist::QuarantineReasonCode::SemanticMismatch);

  // Without validation the same database would have been trusted — the
  // mutated payloads pass every CRC. (Fresh database state: restore is
  // not needed, the warm run re-published a clean cache.)
  auto Check = persist::checkDatabase(Dir.path());
  ASSERT_TRUE(Check.ok());
  EXPECT_EQ(Check->FilesCorrupt, 0u);
}

TEST(DeepCheck, CleanDatabaseHasNoFalsePositives) {
  TempDir Dir, ModDir;
  persist::CacheDatabase Db(Dir.path());
  TinyWorkload W = makeTinyWorkload();
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(2), Db)
                  .ok());

  persist::DbCheckOptions Opts;
  Opts.Deep = true;
  Opts.ModulePaths = writeModuleFiles(W, ModDir.path());
  auto Report = persist::checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Report.ok());
  EXPECT_TRUE(Report->clean());
  EXPECT_GT(Report->TracesVerified, 0u);
  EXPECT_EQ(Report->TracesMismatched, 0u);
  EXPECT_EQ(Report->TracesUnverifiable, 0u);
}

TEST(DeepCheck, ElidedTracesStillVerify) {
  // --opt-flags bodies persist with Nops where dead defs were; the
  // deep pass must accept them (sound elision is invisible at exits).
  TempDir Dir, ModDir;
  persist::CacheDatabase Db(Dir.path());
  dbi::EngineOptions Optimized;
  Optimized.OptimizeFlags = true;

  uint64_t Elided = 0;
  for (uint64_t Seed = 1; Seed <= 20 && Elided == 0; ++Seed) {
    TinyWorkload W = makeTinyWorkload(3, 0, Seed);
    auto R = workloads::runPersistent(W.Registry, W.App,
                                      W.allSlotsInput(2), Db,
                                      persist::PersistOptions(), nullptr,
                                      Optimized);
    ASSERT_TRUE(R.ok());
    Elided = R->Stats.FlagsElided;
    if (Elided == 0) {
      ASSERT_TRUE(Db.clear().ok());
      continue;
    }
    persist::DbCheckOptions Opts;
    Opts.Deep = true;
    Opts.ModulePaths = writeModuleFiles(W, ModDir.path(),
                                        /*IncludeLibrary=*/false);
    auto Report = persist::checkDatabase(Dir.path(), Opts);
    ASSERT_TRUE(Report.ok());
    EXPECT_TRUE(Report->clean());
    EXPECT_EQ(Report->TracesMismatched, 0u);
    EXPECT_GT(Report->TracesVerified, 0u);
  }
  EXPECT_GT(Elided, 0u)
      << "no workload seed produced an elidable dead def";
}

TEST(DeepCheck, SeededMiscompilesAllFlagged) {
  TempDir Dir, ModDir;
  persist::CacheDatabase Db(Dir.path());
  TinyWorkload W = makeTinyWorkload();
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(2), Db)
                  .ok());

  unsigned Mutated = mutateDatabase(Dir.path());
  ASSERT_GT(Mutated, 0u);

  // The CRC-only pass sees nothing wrong.
  auto Shallow = persist::checkDatabase(Dir.path());
  ASSERT_TRUE(Shallow.ok());
  EXPECT_EQ(Shallow->FilesCorrupt, 0u);

  // The deep pass flags every single seeded miscompile.
  persist::DbCheckOptions Opts;
  Opts.Deep = true;
  Opts.ModulePaths = writeModuleFiles(W, ModDir.path());
  auto Report = persist::checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Report.ok());
  EXPECT_EQ(Report->TracesMismatched, Mutated)
      << "deep verify must flag 100% of seeded miscompiles";
  EXPECT_EQ(Report->TracesVerified, 0u);
  EXPECT_GE(Report->FilesCorrupt, 1u);
  EXPECT_FALSE(Report->clean());
}

TEST(DeepCheck, RepairQuarantinesSemanticMismatches) {
  TempDir Dir, ModDir;
  persist::CacheDatabase Db(Dir.path());
  TinyWorkload W = makeTinyWorkload();
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(2), Db)
                  .ok());
  ASSERT_GT(mutateDatabase(Dir.path()), 0u);

  persist::DbCheckOptions Opts;
  Opts.Deep = true;
  Opts.Repair = true;
  Opts.ModulePaths = writeModuleFiles(W, ModDir.path());
  auto Report = persist::checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Report.ok());
  EXPECT_GE(Report->FilesQuarantined, 1u);
  ASSERT_GE(Report->Quarantine.size(), 1u);
  EXPECT_EQ(Report->Quarantine[0].Code,
            persist::QuarantineReasonCode::SemanticMismatch);

  // The database is clean afterwards — nothing poisoned remains.
  auto After = persist::checkDatabase(Dir.path());
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(After->FilesScanned, 0u);
}

TEST(DeepCheck, MissingModuleIsUnverifiableNotCorrupt) {
  TempDir Dir, ModDir;
  persist::CacheDatabase Db(Dir.path());
  TinyWorkload W = makeTinyWorkload();
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(2), Db)
                  .ok());

  // Only the app module is supplied: library traces cannot be judged,
  // and must never be reported as mismatches.
  persist::DbCheckOptions Opts;
  Opts.Deep = true;
  Opts.ModulePaths = writeModuleFiles(W, ModDir.path(),
                                      /*IncludeLibrary=*/false);
  auto Report = persist::checkDatabase(Dir.path(), Opts);
  ASSERT_TRUE(Report.ok());
  EXPECT_TRUE(Report->clean());
  EXPECT_EQ(Report->TracesMismatched, 0u);
  EXPECT_GT(Report->TracesVerified, 0u);
  EXPECT_GT(Report->TracesUnverifiable, 0u);
}

TEST(DeepCheck, UnreadableModuleFileIsAWholePassError) {
  TempDir Dir;
  persist::CacheDatabase Db(Dir.path());
  persist::DbCheckOptions Opts;
  Opts.Deep = true;
  Opts.ModulePaths = {Dir.path() + "/missing.mod"};
  auto Report = persist::checkDatabase(Dir.path(), Opts);
  EXPECT_FALSE(Report.ok());
}
