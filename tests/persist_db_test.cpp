//===- tests/persist_db_test.cpp - cache database maintenance + fuzzing ---===//
//
// Database maintenance (stats, size-capped eviction) and a corruption
// sweep: a persistent cache file damaged at any byte must either be
// rejected cleanly or — never — affect execution results. "To prevent
// the use of invalid/inconsistent translations" (Section 3.2.1) has to
// hold against disk corruption too.
//
//===----------------------------------------------------------------------===//

#include "persist/CacheDatabase.h"
#include "persist/Session.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace pcc;
using namespace pcc::persist;
using tests::makeTinyWorkload;
using tests::TempDir;
using tests::TinyWorkload;

namespace {

CacheFile makeFileWithTraces(unsigned NumTraces, uint32_t Generation) {
  CacheFile File;
  File.EngineHash = dbi::engineVersionHash();
  File.ToolHash = noToolHash();
  File.Generation = Generation;
  ModuleKey Key;
  Key.Path = "/bin/x";
  Key.Base = 0x400000;
  Key.Size = 0x10000;
  File.Modules.push_back(Key);
  for (unsigned I = 0; I != NumTraces; ++I) {
    TraceRecord Trace;
    Trace.GuestStart = 0x400000 + I * 64;
    Trace.GuestInstCount = 4;
    Trace.Code.assign(64, static_cast<uint8_t>(I));
    File.Traces.push_back(std::move(Trace));
  }
  return File;
}

} // namespace

TEST(Database, StatsAggregateAcrossFiles) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(3, 1)).ok());
  ASSERT_TRUE(Db.store(2, makeFileWithTraces(5, 2)).ok());

  auto Stats = Db.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 2u);
  EXPECT_EQ(Stats->CorruptFiles, 0u);
  EXPECT_EQ(Stats->Traces, 8u);
  EXPECT_EQ(Stats->CodeBytes, 8u * 64u);
  EXPECT_GT(Stats->DataBytes, Stats->CodeBytes);
  EXPECT_GT(Stats->DiskBytes, Stats->CodeBytes);
}

TEST(Database, StatsCountCorruptFiles) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(2, 1)).ok());
  auto Bytes = readFile(Db.pathFor(1));
  ASSERT_TRUE(Bytes.ok());
  (*Bytes)[10] ^= 0xff;
  ASSERT_TRUE(writeFileAtomic(Db.pathFor(1), *Bytes).ok());
  auto Stats = Db.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 1u);
  EXPECT_EQ(Stats->CorruptFiles, 1u);
}

TEST(Database, ShrinkEvictsLeastAccumulatedFirst) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  // Generation 5 (heavily reused) vs generation 1 (one-shot) caches.
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(10, 5)).ok());
  ASSERT_TRUE(Db.store(2, makeFileWithTraces(10, 1)).ok());
  ASSERT_TRUE(Db.store(3, makeFileWithTraces(10, 1)).ok());

  auto Before = Db.stats();
  ASSERT_TRUE(Before.ok());
  // Cap so exactly one file must go: the generation-1 ones go first.
  uint64_t PerFile = Before->DiskBytes / 3;
  auto Removed = Db.shrinkTo(Before->DiskBytes - PerFile);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 1u);
  EXPECT_TRUE(Db.exists(1)) << "high-generation cache must survive";
  EXPECT_TRUE(Db.exists(2) != Db.exists(3))
      << "exactly one generation-1 cache evicted";
}

TEST(Database, ShrinkToZeroEmptiesDatabase) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(4, 1)).ok());
  ASSERT_TRUE(Db.store(2, makeFileWithTraces(4, 2)).ok());
  auto Removed = Db.shrinkTo(0);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 2u);
  auto Stats = Db.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 0u);
}

TEST(Database, ShrinkAlwaysDropsCorruptFiles) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(4, 9)).ok());
  ASSERT_TRUE(Db.store(2, makeFileWithTraces(4, 9)).ok());
  auto Bytes = readFile(Db.pathFor(2));
  ASSERT_TRUE(Bytes.ok());
  Bytes->resize(Bytes->size() / 2);
  ASSERT_TRUE(writeFileAtomic(Db.pathFor(2), *Bytes).ok());

  // Budget is generous: only the corrupt file goes.
  auto Removed = Db.shrinkTo(1ull << 30);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 1u);
  EXPECT_TRUE(Db.exists(1));
  EXPECT_FALSE(Db.exists(2));
}

TEST(Database, ScansSurviveTruncatedV2Header) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(4, 1)).ok());
  ASSERT_TRUE(Db.store(2, makeFileWithTraces(4, 1)).ok());
  auto Bytes = readFile(Db.pathFor(2));
  ASSERT_TRUE(Bytes.ok());
  Bytes->resize(40); // Valid v2 magic, header cut short.
  ASSERT_TRUE(writeFileAtomic(Db.pathFor(2), *Bytes).ok());

  // The compatibility scan skips the stub without failing — and pulls
  // it into the quarantine (with the reason recorded) so later scans
  // don't trip over it again.
  auto Matches =
      Db.findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(Matches.ok());
  ASSERT_EQ(Matches->size(), 1u);
  EXPECT_EQ((*Matches)[0], Db.pathFor(1));
  EXPECT_FALSE(Db.exists(2));

  auto Stats = Db.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 1u);
  EXPECT_EQ(Stats->CorruptFiles, 0u);
  EXPECT_EQ(Stats->QuarantinedFiles, 1u);

  auto Quarantined = Db.quarantined();
  ASSERT_TRUE(Quarantined.ok());
  ASSERT_EQ(Quarantined->size(), 1u);
  EXPECT_FALSE((*Quarantined)[0].Reason.empty());

  auto Removed = Db.shrinkTo(1ull << 30);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 0u);
  EXPECT_TRUE(Db.exists(1));
}

TEST(Database, ScansSurviveBadIndexCrc) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(4, 1)).ok());
  ASSERT_TRUE(Db.store(2, makeFileWithTraces(4, 1)).ok());
  auto Bytes = readFile(Db.pathFor(2));
  ASSERT_TRUE(Bytes.ok());
  // Flip a byte inside the trace-index section; the header stores that
  // section's offset at byte 48 (see CacheView.h).
  uint32_t IndexOffset = 0;
  for (unsigned I = 0; I != 4; ++I)
    IndexOffset |= static_cast<uint32_t>((*Bytes)[48 + I]) << (8 * I);
  ASSERT_LT(IndexOffset + 2, Bytes->size());
  (*Bytes)[IndexOffset + 2] ^= 0x40;
  ASSERT_TRUE(writeFileAtomic(Db.pathFor(2), *Bytes).ok());

  // The header itself is intact, so the header-only compatibility scan
  // still lists the file (priming rejects it later); the index-deep
  // maintenance scans flag it as corrupt and shrink deletes it.
  auto Matches =
      Db.findCompatible(dbi::engineVersionHash(), noToolHash());
  ASSERT_TRUE(Matches.ok());
  EXPECT_EQ(Matches->size(), 2u);

  auto Stats = Db.stats();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->CacheFiles, 2u);
  EXPECT_EQ(Stats->CorruptFiles, 1u);

  auto Removed = Db.shrinkTo(1ull << 30);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 1u);
  EXPECT_TRUE(Db.exists(1));
  EXPECT_FALSE(Db.exists(2));
}

TEST(Database, ShrinkNoopWhenUnderBudget) {
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(Db.store(1, makeFileWithTraces(4, 1)).ok());
  auto Removed = Db.shrinkTo(1ull << 30);
  ASSERT_TRUE(Removed.ok());
  EXPECT_EQ(*Removed, 0u);
  EXPECT_TRUE(Db.exists(1));
}

//===----------------------------------------------------------------------===//
// Corruption sweep: flip a byte at a position spread over the file and
// verify the run is never affected.
//===----------------------------------------------------------------------===//

namespace {

class CacheCorruptionSweep : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(CacheCorruptionSweep, DamagedCacheNeverChangesResults) {
  TinyWorkload W = makeTinyWorkload(3, 2, /*Seed=*/77);
  auto Input = W.allSlotsInput(3);
  TempDir Dir;
  CacheDatabase Db(Dir.path());

  auto Reference = workloads::runNative(W.Registry, W.App, Input);
  ASSERT_TRUE(Reference.ok());
  auto Cold = workloads::runPersistent(W.Registry, W.App, Input, Db);
  ASSERT_TRUE(Cold.ok());

  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  ASSERT_EQ(Files->size(), 1u);
  std::string Path = Dir.path() + "/" + (*Files)[0];
  auto Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());

  // Parameter 0..19 selects a byte position across the file; flip it.
  size_t Position = (Bytes->size() - 1) *
                    static_cast<size_t>(GetParam()) / 19;
  (*Bytes)[Position] ^= 0x5a;
  ASSERT_TRUE(writeFileAtomic(Path, *Bytes).ok());

  persist::PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  auto Warm =
      workloads::runPersistent(W.Registry, W.App, Input, Db, ReadOnly);
  ASSERT_TRUE(Warm.ok()) << Warm.status().toString();
  // A flip in the header, module table or trace index rejects the cache
  // wholesale at prime; a flip in a trace's code image is only caught by
  // that trace's own CRC at first execution, where the engine drops and
  // retranslates it. Either way, no damaged byte may go unnoticed and
  // the run's observable behaviour must be unaffected.
  if (Warm->Prime.CacheFound)
    EXPECT_GT(Warm->Stats.TracesDroppedCorrupt, 0u)
        << "byte " << Position << " flip went undetected";
  EXPECT_TRUE(Reference->observablyEquals(Warm->Run));
}

INSTANTIATE_TEST_SUITE_P(Positions, CacheCorruptionSweep,
                         ::testing::Range(0, 20));

TEST(CacheValidation, RealCachesValidateCleanly) {
  TinyWorkload W = makeTinyWorkload(3, 2);
  TempDir Dir;
  CacheDatabase Db(Dir.path());
  ASSERT_TRUE(workloads::runPersistent(W.Registry, W.App,
                                       W.allSlotsInput(3), Db)
                  .ok());
  auto Files = listDirectory(Dir.path());
  ASSERT_TRUE(Files.ok());
  auto File = Db.loadPath(Dir.path() + "/" + (*Files)[0]);
  ASSERT_TRUE(File.ok());
  EXPECT_TRUE(File->validate().ok());
}

TEST(CacheValidation, DetectsStructuralViolations) {
  auto expectInvalid = [](CacheFile File, const char *What) {
    Status S = File.validate();
    EXPECT_FALSE(S.ok()) << What;
  };
  CacheFile Base = makeFileWithTraces(2, 1);
  EXPECT_TRUE(Base.validate().ok());

  CacheFile BadModule = Base;
  BadModule.Traces[0].ModuleIndex = 9;
  expectInvalid(BadModule, "module index");

  CacheFile OutsideMapping = Base;
  OutsideMapping.Traces[0].GuestStart = 0x90000000;
  expectInvalid(OutsideMapping, "start outside module");

  CacheFile Duplicate = Base;
  Duplicate.Traces[1].GuestStart = Duplicate.Traces[0].GuestStart;
  expectInvalid(Duplicate, "duplicate start");

  CacheFile ShortCode = Base;
  ShortCode.Traces[0].Code.resize(8);
  expectInvalid(ShortCode, "short code image");

  CacheFile BadExit = Base;
  BadExit.Traces[0].Exits.push_back(ExitRecord{0, 99, 0, 0});
  expectInvalid(BadExit, "exit index out of range");

  CacheFile DanglingLink = Base;
  DanglingLink.Traces[0].Exits.push_back(
      ExitRecord{1, 0, 0x12345678, 0x12345678});
  expectInvalid(DanglingLink, "dangling link");
}
